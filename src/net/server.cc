#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/model.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine::net {
namespace {

/// Event-loop tags. Connection ids start at 1, so the listener owns 0;
/// timers live in their own tag namespace.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kReapTimerTag = 1;
constexpr uint64_t kAcceptRetryTimerTag = 2;

WireResponse ErrorResponse(const Status& status) {
  WireResponse response;
  response.code = status.code();
  response.message = status.message();
  return response;
}

/// Flattens one engine answer into its wire form, resolving vertex ids to
/// names against the model that produced them (guaranteed by QueryBatch's
/// model_out — NOT the engine's current model, which a racing Swap may
/// already have replaced).
WireResponse ToWire(const StatusOr<api::QueryResponse>& result,
                    const api::Model& model,
                    api::QueryRequest::Kind kind) {
  if (!result.ok()) return ErrorResponse(result.status());
  WireResponse response;
  response.kind = kind;
  response.model_version = result->model_version;
  response.from_cache = result->from_cache;
  if (!model.has_graph()) {
    return ErrorResponse(
        Status::Internal("served model has no graph to resolve names"));
  }
  const core::DirectedHypergraph& graph = model.graph();
  response.ranked.reserve(result->ranked.size());
  for (const serve::RankedConsequent& r : result->ranked) {
    response.ranked.push_back(WireConsequent{graph.vertex_name(r.head),
                                             r.acv});
  }
  response.closure.reserve(result->closure.size());
  for (core::VertexId v : result->closure) {
    response.closure.push_back(graph.vertex_name(v));
  }
  return response;
}

}  // namespace

/// Per-connection reactor state. The `machine` (framing + write queue),
/// the flags, and `last_activity` belong to the reactor thread alone.
/// `served` is written only by the pool worker running this connection's
/// single in-flight batch; the completion-queue mutex and the pool's task
/// queue order batch N's write before batch N+1's read.
struct Server::Conn {
  uint64_t id = 0;
  Socket socket;
  Connection machine;
  uint64_t served = 0;

  bool batch_in_flight = false;
  /// A transport error or full hangup: close without flushing.
  bool dead = false;
  /// Set by the reactor when it drops the connection, so a completion
  /// that arrives later knows its bytes have nowhere to go.
  bool closed = false;
  bool want_read = true;
  bool want_write = false;
  std::chrono::steady_clock::time_point last_activity;

  explicit Conn(Connection::Options options) : machine(options) {}
};

struct Server::Completion {
  std::shared_ptr<Conn> conn;
  std::string bytes;
  size_t admitted = 0;
  uint64_t rejected = 0;
};

StatusOr<std::unique_ptr<Server>> Server::Start(api::Engine* engine,
                                                ServerOptions options) {
  HM_CHECK(engine != nullptr);
  if (options.max_batch == 0) {
    return Status::InvalidArgument("ServerOptions::max_batch must be >= 1");
  }
  if (options.max_connections == 0) {
    return Status::InvalidArgument(
        "ServerOptions::max_connections must be >= 1");
  }
  if (options.max_query_bytes > kMaxBodyBytes) {
    return Status::InvalidArgument(
        "ServerOptions::max_query_bytes exceeds the protocol cap");
  }
  if (options.idle_timeout_ms < 0) {
    return Status::InvalidArgument(
        "ServerOptions::idle_timeout_ms must be >= 0");
  }
  HM_ASSIGN_OR_RETURN(Listener listener, Listener::Bind(options.port));
  HM_RETURN_IF_ERROR(listener.SetNonBlocking(true));
  HM_ASSIGN_OR_RETURN(EventLoop loop, EventLoop::Create());
  HM_RETURN_IF_ERROR(loop.Add(listener.fd(), kListenerTag, /*read=*/true,
                              /*write=*/false));
  if (options.idle_timeout_ms > 0) {
    loop.AddTimer(kReapTimerTag,
                  std::max(10, options.idle_timeout_ms / 2));
  }
  // Not make_unique: the constructor is private.
  std::unique_ptr<Server> server(
      new Server(engine, options, std::move(listener), std::move(loop)));
  server->reactor_thread_ = std::thread([s = server.get()] {
    s->ReactorLoop();
  });
  return server;
}

Server::Server(api::Engine* engine, ServerOptions options, Listener listener,
               EventLoop loop)
    : engine_(engine),
      options_(options),
      listener_(std::move(listener)),
      loop_(std::move(loop)),
      read_scratch_(64u << 10) {
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else {
    const size_t requested =
        options_.num_threads != 0
            ? options_.num_threads
            : std::max<size_t>(4, ThreadPool::HardwareThreads());
    owned_pool_ = std::make_unique<ThreadPool>(requested);
    pool_ = owned_pool_.get();
  }
}

Server::~Server() { Stop(); }

void Server::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  stopping_.store(true);
  loop_.Wakeup();
  if (reactor_thread_.joinable()) reactor_thread_.join();
  // Engine batches already handed to the pool finish (their results are
  // the clients' property until the sockets actually close); the reactor
  // is gone, so their completions pile up here instead of being
  // delivered.
  std::vector<Completion> leftovers;
  {
    std::unique_lock<std::mutex> lock(completion_mutex_);
    outstanding_cv_.wait(lock, [this] { return outstanding_batches_ == 0; });
    leftovers.swap(completions_);
  }
  for (Completion& done : leftovers) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.batches;
      stats_.queries_answered += done.admitted;
      stats_.queries_rejected += done.rejected;
    }
    if (!done.conn->closed) done.conn->machine.QueueWrite(std::move(done.bytes));
  }
  // One best-effort nonblocking flush so a reading client gets the
  // responses that were finished when Stop hit; a stalled client gets a
  // close instead of an unbounded wait.
  for (auto& [id, conn] : conns_) {
    while (conn->machine.wants_write()) {
      std::string_view head = conn->machine.write_head();
      Socket::IoResult io = conn->socket.WriteSome(head.data(), head.size());
      if (io.bytes == 0) break;
      conn->machine.ConsumeWrite(io.bytes);
    }
    conn->closed = true;
  }
  conns_.clear();  // closes every descriptor still owned here
  listener_.Close();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Server::ReactorLoop() {
  std::vector<EventLoop::Event> events;
  while (!stopping_.load()) {
    events.clear();
    // The 1 s ceiling is belt and braces — Stop's Wakeup() (sticky, see
    // EventLoop::Wakeup) is what actually bounds shutdown latency.
    StatusOr<size_t> waited = loop_.Wait(/*timeout_ms=*/1000, &events);
    if (!waited.ok()) {
      // A dead reactor must not look like a healthy server: stop
      // accepting (handshakes would otherwise keep completing into the
      // backlog) and reset every live socket so clients fail fast
      // instead of hanging on responses nobody will ever write.
      HM_LOG_ERROR << "reactor wait failed, shutting down: "
                   << waited.status().ToString();
      stopping_.store(true);
      listener_.Shutdown();
      for (auto& [id, conn] : conns_) conn->socket.Shutdown();
      break;
    }
    if (stopping_.load()) break;
    DrainCompletions();
    for (const EventLoop::Event& event : events) {
      if (event.timer) {
        if (event.tag == kReapTimerTag) {
          ReapIdle();
        } else if (event.tag == kAcceptRetryTimerTag) {
          // Descriptor pressure may have passed; listen again.
          loop_.CancelTimer(kAcceptRetryTimerTag);
          (void)loop_.Update(listener_.fd(), kListenerTag, /*read=*/true,
                             /*write=*/false);
          AcceptPending();
        }
        continue;
      }
      if (event.tag == kListenerTag) {
        AcceptPending();
        continue;
      }
      HandleConnEvent(event);
    }
  }
  // Leave conns_ and the completion queue for Stop(): it joins this
  // thread first, so it owns them from here on.
}

void Server::AcceptPending() {
  while (!stopping_.load()) {
    StatusOr<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (Listener::WouldBlock(accepted.status())) return;
      if (accepted.status().code() == StatusCode::kFailedPrecondition) {
        return;  // concurrent shutdown
      }
      // EMFILE or a transient network failure. The pending connection
      // stays in the backlog, so a level-triggered loop would spin on it;
      // mute the listener and retry on a timer instead.
      HM_LOG_WARNING << "accept failed: " << accepted.status().ToString()
                     << "; retrying in 100 ms";
      (void)loop_.Update(listener_.fd(), kListenerTag, /*read=*/false,
                         /*write=*/false);
      loop_.AddTimer(kAcceptRetryTimerTag, 100);
      return;
    }
    if (conns_.size() >= options_.max_connections) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.connections_rejected;
      continue;  // socket closes as `accepted` dies
    }
    if (!accepted->SetNonBlocking(true).ok()) continue;

    Connection::Options machine_options;
    machine_options.max_frame_bytes = options_.max_query_bytes;
    machine_options.write_high_water = options_.write_high_water;
    auto conn = std::make_shared<Conn>(machine_options);
    conn->id = next_connection_id_++;
    conn->socket = std::move(*accepted);
    conn->last_activity = std::chrono::steady_clock::now();
    Status added = loop_.Add(conn->socket.fd(), conn->id, /*read=*/true,
                             /*write=*/false);
    if (!added.ok()) {
      HM_LOG_ERROR << "cannot register connection: " << added.ToString();
      continue;
    }
    conns_.emplace(conn->id, conn);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.connections_accepted;
  }
}

void Server::HandleConnEvent(const EventLoop::Event& event) {
  auto it = conns_.find(event.tag);
  if (it == conns_.end()) return;  // closed earlier this same wait round
  Conn* conn = it->second.get();
  if (event.readable) ReadFromConn(conn);
  if (event.writable) FlushWrites(conn);
  if (event.hangup && !event.readable && !event.writable) {
    // Full hangup with nothing to transfer: the socket is dead, and with
    // no interest bits set a level-triggered loop would report it
    // forever. Resolve it now.
    conn->dead = true;
  }
  AfterEvent(conn);
}

void Server::ReadFromConn(Conn* conn) {
  while (conn->machine.wants_read()) {
    Socket::IoResult io =
        conn->socket.ReadSome(read_scratch_.data(), read_scratch_.size());
    if (io.bytes > 0) {
      conn->machine.Ingest(
          std::string_view(read_scratch_.data(), io.bytes));
      conn->last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (io.would_block) return;
    if (io.closed) {
      conn->machine.OnPeerClosed();
      return;
    }
    // Transport error: nothing can be read or written reliably anymore.
    conn->dead = true;
    return;
  }
}

void Server::FlushWrites(Conn* conn) {
  while (conn->machine.wants_write()) {
    std::string_view head = conn->machine.write_head();
    Socket::IoResult io = conn->socket.WriteSome(head.data(), head.size());
    if (io.bytes > 0) {
      conn->machine.ConsumeWrite(io.bytes);
      conn->last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (io.would_block) return;
    conn->dead = true;
    return;
  }
}

void Server::AfterEvent(Conn* conn) {
  if (conn->closed) return;
  if (conn->dead) {
    CloseConn(conn);
    return;
  }
  if (!conn->batch_in_flight && conn->machine.pending_frames() > 0 &&
      !stopping_.load()) {
    SubmitBatch(conn);
  }
  const bool stream_over =
      conn->machine.corrupt() || conn->machine.peer_closed();
  if (stream_over && !conn->batch_in_flight &&
      conn->machine.pending_frames() == 0 &&
      !conn->machine.wants_write()) {
    // Decoded frames were answered and flushed; nothing more can arrive.
    CloseConn(conn);
    return;
  }
  const bool want_read = conn->machine.wants_read();
  const bool want_write = conn->machine.wants_write();
  if (want_read != conn->want_read || want_write != conn->want_write) {
    conn->want_read = want_read;
    conn->want_write = want_write;
    (void)loop_.Update(conn->socket.fd(), conn->id, want_read, want_write);
  }
}

void Server::SubmitBatch(Conn* conn) {
  std::vector<PendingFrame> frames =
      conn->machine.TakeBatch(options_.max_batch);
  conn->batch_in_flight = true;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    ++outstanding_batches_;
  }
  std::shared_ptr<Conn> shared = conns_.at(conn->id);
  pool_->Submit(
      [this, shared = std::move(shared), frames = std::move(frames)]() mutable {
        ExecuteBatch(std::move(shared), std::move(frames));
      });
}

void Server::CloseConn(Conn* conn) {
  conn->closed = true;
  (void)loop_.Remove(conn->socket.fd());
  // The map's shared_ptr may be the last reference (closing the socket
  // now) or an in-flight batch may briefly outlive it — either way the
  // completion sees `closed` and discards its bytes.
  conns_.erase(conn->id);
}

void Server::ReapIdle() {
  const auto now = std::chrono::steady_clock::now();
  const auto timeout = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<Conn*> idle;
  for (auto& [id, conn] : conns_) {
    if (conn->batch_in_flight || conn->machine.pending_frames() > 0 ||
        conn->machine.wants_write()) {
      continue;  // work in progress is not idleness
    }
    if (now - conn->last_activity >= timeout) idle.push_back(conn.get());
  }
  for (Conn* conn : idle) {
    CloseConn(conn);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.connections_reaped;
  }
}

void Server::DrainCompletions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    done.swap(completions_);
  }
  for (Completion& completion : done) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.batches;
      stats_.queries_answered += completion.admitted;
      stats_.queries_rejected += completion.rejected;
    }
    Conn* conn = completion.conn.get();
    if (conn->closed) continue;  // dropped while the batch executed
    conn->batch_in_flight = false;
    conn->machine.QueueWrite(std::move(completion.bytes));
    FlushWrites(conn);
    AfterEvent(conn);
  }
}

void Server::ExecuteBatch(std::shared_ptr<Conn> conn,
                          std::vector<PendingFrame> frames) {
  std::string out;
  size_t admitted = 0;
  uint64_t rejected = 0;
  BuildResponses(&frames, &conn->served, &out, &admitted, &rejected);
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    completions_.push_back(
        Completion{std::move(conn), std::move(out), admitted, rejected});
  }
  loop_.Wakeup();
  // Last: once Stop() observes the decrement it may tear the server
  // down, so the decrement and the notify both happen under the lock —
  // Stop's predicate wait cannot return (and free the cv) until this
  // task releases the mutex, after which it touches no member again.
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    --outstanding_batches_;
    outstanding_cv_.notify_all();
  }
}

void Server::BuildResponses(std::vector<PendingFrame>* frames,
                            uint64_t* served, std::string* out,
                            size_t* admitted_out, uint64_t* rejected_out) {
  std::vector<WireResponse> responses(frames->size());
  std::vector<api::QueryRequest> admitted;
  std::vector<size_t> admitted_slot;
  uint64_t rejected = 0;

  for (size_t i = 0; i < frames->size(); ++i) {
    PendingFrame& frame = (*frames)[i];
    if (!frame.pre.ok()) {
      responses[i] = ErrorResponse(frame.pre);
      ++rejected;
      continue;
    }
    if (frame.header.version != kProtocolVersion) {
      responses[i] = ErrorResponse(Status::Unimplemented(
          StrFormat("protocol version %u not supported (server speaks %u)",
                    unsigned{frame.header.version},
                    unsigned{kProtocolVersion})));
      ++rejected;
      continue;
    }
    if (frame.header.type != static_cast<uint16_t>(FrameType::kQuery)) {
      // kUnimplemented, matching the spec's §5 table: a frame type this
      // server does not speak is a capability gap (a future protocol
      // feature), not a malformed request that can never succeed.
      responses[i] = ErrorResponse(Status::Unimplemented(
          StrFormat("frame type %u not supported here (want QUERY)",
                    unsigned{frame.header.type})));
      ++rejected;
      continue;
    }
    api::QueryRequest request;
    Status decoded = DecodeQueryBody(frame.body, &request);
    if (!decoded.ok()) {
      responses[i] = ErrorResponse(decoded);
      ++rejected;
      continue;
    }
    if (options_.max_queries_per_connection != 0 &&
        *served >= options_.max_queries_per_connection) {
      responses[i] = ErrorResponse(Status::ResourceExhausted(
          StrFormat("per-connection query quota (%llu) exhausted",
                    static_cast<unsigned long long>(
                        options_.max_queries_per_connection))));
      ++rejected;
      continue;
    }
    if (options_.max_queue_depth != 0 &&
        in_flight_.fetch_add(1) >= options_.max_queue_depth) {
      in_flight_.fetch_sub(1);
      responses[i] = ErrorResponse(Status::ResourceExhausted(
          StrFormat("server queue depth (%zu) exceeded; retry later",
                    options_.max_queue_depth)));
      ++rejected;
      continue;
    }
    ++*served;
    admitted_slot.push_back(i);
    admitted.push_back(std::move(request));
  }

  if (!admitted.empty()) {
    std::shared_ptr<const api::Model> model;
    std::vector<StatusOr<api::QueryResponse>> results =
        engine_->QueryBatch(admitted, &model);
    if (options_.max_queue_depth != 0) in_flight_.fetch_sub(admitted.size());
    for (size_t j = 0; j < results.size(); ++j) {
      responses[admitted_slot[j]] =
          ToWire(results[j], *model, admitted[j].kind);
    }
  }

  // Responses go back in request order, one contiguous buffer per batch.
  for (size_t i = 0; i < frames->size(); ++i) {
    std::string encoded;
    Status status = EncodeResponseFrame((*frames)[i].header.request_id,
                                        responses[i], &encoded);
    if (!status.ok()) {
      // A name/message too long for the wire; strip the payload rather
      // than abort — the encode of a bare error cannot fail.
      encoded.clear();
      HM_CHECK_OK(EncodeResponseFrame(
          (*frames)[i].header.request_id,
          ErrorResponse(Status::Internal("response exceeds wire limits")),
          &encoded));
    }
    *out += encoded;
  }
  *admitted_out = admitted.size();
  *rejected_out = rejected;
}

}  // namespace hypermine::net
