#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/model.h"
#include "util/build_info.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace hypermine::net {
namespace {

/// Event-loop tags. Connection ids count up from 1, so the query listener
/// owns 0 and the admin listener the far end of the space (one below
/// ~0, which the loop reserves for its wakeup eventfd); timers live in
/// their own tag namespace.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kAdminListenerTag = ~uint64_t{0} - 1;
constexpr uint64_t kReapTimerTag = 1;
constexpr uint64_t kAcceptRetryTimerTag = 2;
constexpr uint64_t kAdminAcceptRetryTimerTag = 3;
constexpr uint64_t kStallTimerTag = 4;

/// Admin connections are exempt from max_connections (a saturated query
/// plane must not lock out the scraper diagnosing it) but capped here —
/// the admin port serves one Prometheus and one curl, not a fleet.
constexpr size_t kMaxAdminConnections = 64;

/// Raises an atomic high-water mark (relaxed CAS loop).
void UpdateMax(std::atomic<size_t>* max, size_t value) {
  size_t seen = max->load(std::memory_order_relaxed);
  while (seen < value && !max->compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

WireResponse ErrorResponse(const Status& status) {
  WireResponse response;
  response.code = status.code();
  response.message = status.message();
  return response;
}

/// Flattens one engine answer into its wire form, resolving vertex ids to
/// names against the model that produced them (guaranteed by QueryBatch's
/// model_out — NOT the engine's current model, which a racing Swap may
/// already have replaced).
WireResponse ToWire(const StatusOr<api::QueryResponse>& result,
                    const api::Model& model,
                    api::QueryRequest::Kind kind) {
  if (!result.ok()) return ErrorResponse(result.status());
  WireResponse response;
  response.kind = kind;
  response.model_version = result->model_version;
  response.from_cache = result->from_cache;
  if (!model.has_graph()) {
    return ErrorResponse(
        Status::Internal("served model has no graph to resolve names"));
  }
  const core::DirectedHypergraph& graph = model.graph();
  response.ranked.reserve(result->ranked.size());
  for (const serve::RankedConsequent& r : result->ranked) {
    response.ranked.push_back(WireConsequent{graph.vertex_name(r.head),
                                             r.acv});
  }
  response.closure.reserve(result->closure.size());
  for (core::VertexId v : result->closure) {
    response.closure.push_back(graph.vertex_name(v));
  }
  return response;
}

}  // namespace

/// Per-connection reactor state. The `machine` (framing + write queue),
/// the flags, and `last_activity` belong to the reactor thread alone.
/// `served` is written only by the pool worker running this connection's
/// single in-flight batch; the completion-queue mutex and the pool's task
/// queue order batch N's write before batch N+1's read.
struct Server::Conn {
  uint64_t id = 0;
  Socket socket;
  Connection machine;
  uint64_t served = 0;

  /// Admin-plane connection: `http` replaces `machine` as the protocol
  /// state machine (machine stays default-constructed and unused).
  bool admin = false;
  std::unique_ptr<HttpConnection> http;

  /// Write-drain timing (query conns): set when the write queue goes
  /// non-empty, observed into the drain histogram when it empties.
  bool write_timing = false;
  std::chrono::steady_clock::time_point write_start;

  /// Stall detection (query conns): set with a timestamp when a read
  /// leaves the machine mid-frame; re-anchored whenever frames_parsed()
  /// moves (completing frames is progress even when the machine is
  /// always midway through the NEXT one). The clock must NOT reset on
  /// mere activity — a slow-loris peer is active, a byte at a time.
  bool in_frame = false;
  uint64_t frames_at_stall_start = 0;
  std::chrono::steady_clock::time_point frame_start;

  bool batch_in_flight = false;
  /// A transport error or full hangup: close without flushing.
  bool dead = false;
  /// Set by the reactor when it drops the connection, so a completion
  /// that arrives later knows its bytes have nowhere to go.
  bool closed = false;
  bool want_read = true;
  bool want_write = false;
  std::chrono::steady_clock::time_point last_activity;

  explicit Conn(Connection::Options options) : machine(options) {}
};

struct Server::Completion {
  std::shared_ptr<Conn> conn;
  std::string bytes;
  size_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;
};

StatusOr<std::unique_ptr<Server>> Server::Start(api::Engine* engine,
                                                ServerOptions options) {
  HM_CHECK(engine != nullptr);
  if (options.max_batch == 0) {
    return Status::InvalidArgument("ServerOptions::max_batch must be >= 1");
  }
  if (options.max_connections == 0) {
    return Status::InvalidArgument(
        "ServerOptions::max_connections must be >= 1");
  }
  if (options.max_query_bytes > kMaxBodyBytes) {
    return Status::InvalidArgument(
        "ServerOptions::max_query_bytes exceeds the protocol cap");
  }
  if (options.idle_timeout_ms < 0) {
    return Status::InvalidArgument(
        "ServerOptions::idle_timeout_ms must be >= 0");
  }
  if (options.max_queue_wait_ms < 0) {
    return Status::InvalidArgument(
        "ServerOptions::max_queue_wait_ms must be >= 0");
  }
  if (options.stall_timeout_ms < 0) {
    return Status::InvalidArgument(
        "ServerOptions::stall_timeout_ms must be >= 0");
  }
  if (options.admin_port > 65535) {
    return Status::InvalidArgument(
        "ServerOptions::admin_port must fit a TCP port");
  }
  HM_ASSIGN_OR_RETURN(Listener listener, Listener::Bind(options.port));
  HM_RETURN_IF_ERROR(listener.SetNonBlocking(true));
  Listener admin_listener;
  if (options.admin_port >= 0) {
    HM_ASSIGN_OR_RETURN(
        admin_listener,
        Listener::Bind(static_cast<uint16_t>(options.admin_port)));
    HM_RETURN_IF_ERROR(admin_listener.SetNonBlocking(true));
  }
  HM_ASSIGN_OR_RETURN(EventLoop loop, EventLoop::Create());
  HM_RETURN_IF_ERROR(loop.Add(listener.fd(), kListenerTag, /*read=*/true,
                              /*write=*/false));
  if (admin_listener.valid()) {
    HM_RETURN_IF_ERROR(loop.Add(admin_listener.fd(), kAdminListenerTag,
                                /*read=*/true, /*write=*/false));
  }
  if (options.idle_timeout_ms > 0) {
    loop.AddTimer(kReapTimerTag,
                  std::max(10, options.idle_timeout_ms / 2));
  }
  if (options.stall_timeout_ms > 0) {
    loop.AddTimer(kStallTimerTag,
                  std::max(10, options.stall_timeout_ms / 2));
  }
  // Not make_unique: the constructor is private.
  std::unique_ptr<Server> server(
      new Server(engine, options, std::move(listener),
                 std::move(admin_listener), std::move(loop)));
  server->reactor_thread_ = std::thread([s = server.get()] {
    s->ReactorLoop();
  });
  return server;
}

Server::Server(api::Engine* engine, ServerOptions options, Listener listener,
               Listener admin_listener, EventLoop loop)
    : engine_(engine),
      options_(options),
      listener_(std::move(listener)),
      admin_listener_(std::move(admin_listener)),
      loop_(std::move(loop)),
      read_scratch_(64u << 10) {
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else {
    const size_t requested =
        options_.num_threads != 0
            ? options_.num_threads
            : std::max<size_t>(4, ThreadPool::HardwareThreads());
    owned_pool_ = std::make_unique<ThreadPool>(requested);
    pool_ = owned_pool_.get();
  }

  registry_ = options_.registry != nullptr ? options_.registry
                                           : &metrics::DefaultRegistry();
  h_queue_wait_ = registry_->GetHistogram(
      "hypermine_net_queue_wait_seconds",
      "Reactor-to-worker wait per batch: TakeBatch to ExecuteBatch start.");
  h_engine_batch_ = registry_->GetHistogram(
      "hypermine_engine_batch_seconds",
      "Wall time of api::Engine::QueryBatch per admitted batch.");
  h_write_drain_ = registry_->GetHistogram(
      "hypermine_net_write_drain_seconds",
      "Response write-queue lifetime: first byte queued to queue empty.");
  // Bridge the server's own counters (and the engine's) into the registry
  // at scrape time instead of double-counting on the hot path: the
  // collector runs once per render, the serving path pays nothing extra.
  collector_id_ = registry_->AddCollector([this] {
    const ServerStats s = stats();
    registry_
        ->GetCounter("hypermine_net_connections_accepted_total",
                     "Query-plane connections accepted.")
        ->BridgeTo(s.connections_accepted);
    registry_
        ->GetCounter("hypermine_net_connections_rejected_total",
                     "Accepts closed because max_connections was reached.")
        ->BridgeTo(s.connections_rejected);
    registry_
        ->GetCounter("hypermine_net_connections_reaped_total",
                     "Connections closed by the idle-timeout reaper.")
        ->BridgeTo(s.connections_reaped);
    registry_
        ->GetCounter("hypermine_net_connections_stalled_total",
                     "Connections closed by the mid-frame stall timer "
                     "(slow loris).")
        ->BridgeTo(s.connections_stalled);
    registry_
        ->GetCounter("hypermine_net_queries_shed_total",
                     "Queries answered kUnavailable by load shedding "
                     "(out-waited max_queue_wait_ms) or during drain.")
        ->BridgeTo(s.queries_shed);
    registry_
        ->GetGauge("hypermine_net_draining",
                   "1 once Drain() was requested, else 0.")
        ->Set(draining_.load() ? 1 : 0);
    registry_
        ->GetCounter("hypermine_net_batches_total",
                     "Engine batches executed.")
        ->BridgeTo(s.batches);
    registry_
        ->GetCounter("hypermine_net_queries_answered_total",
                     "Queries the engine ran (per-query errors included).")
        ->BridgeTo(s.queries_answered);
    registry_
        ->GetCounter("hypermine_net_queries_rejected_total",
                     "Queries rejected before the engine (quota, queue "
                     "depth, malformed frames).")
        ->BridgeTo(s.queries_rejected);
    registry_
        ->GetCounter("hypermine_net_frames_coalesced_total",
                     "Frames that shared an engine batch with an earlier "
                     "frame (batch of n adds n-1).")
        ->BridgeTo(s.frames_coalesced);
    registry_
        ->GetCounter("hypermine_net_bytes_read_total",
                     "Payload bytes read off query connections.")
        ->BridgeTo(s.bytes_read);
    registry_
        ->GetCounter("hypermine_net_bytes_written_total",
                     "Payload bytes written to query connections.")
        ->BridgeTo(s.bytes_written);
    registry_
        ->GetCounter("hypermine_net_admin_requests_total",
                     "HTTP requests answered on the admin plane.")
        ->BridgeTo(s.admin_requests);
    registry_
        ->GetGauge("hypermine_net_queue_depth",
                   "Queries admitted but not yet answered, right now.")
        ->Set(static_cast<int64_t>(s.queue_depth));
    registry_
        ->GetGauge("hypermine_net_queue_depth_peak",
                   "High-water mark of hypermine_net_queue_depth.")
        ->Set(static_cast<int64_t>(s.queue_depth_peak));
    registry_
        ->GetGauge("hypermine_net_open_connections",
                   "Connections currently owned by the reactor (admin "
                   "plane included).")
        ->Set(static_cast<int64_t>(open_connections_.load()));

    const api::CacheStats cache = engine_->cache_stats();
    registry_
        ->GetCounter("hypermine_engine_cache_hits_total",
                     "Engine result-cache hits.")
        ->BridgeTo(cache.hits);
    registry_
        ->GetCounter("hypermine_engine_cache_misses_total",
                     "Engine result-cache misses.")
        ->BridgeTo(cache.misses);
    registry_
        ->GetCounter("hypermine_engine_cache_evictions_total",
                     "Engine result-cache LRU evictions.")
        ->BridgeTo(cache.evictions);
    registry_
        ->GetCounter("hypermine_model_swaps_total",
                     "Lifetime api::Engine::Swap calls.")
        ->BridgeTo(engine_->swap_count());

    const uint64_t version = engine_->model()->version();
    registry_
        ->GetGauge("hypermine_model_version",
                   "version() of the currently served model.")
        ->Set(static_cast<int64_t>(version));
    metrics::Gauge* info = registry_->GetGauge(
        StrFormat("hypermine_model_info{model_version=\"%llu\"}",
                  static_cast<unsigned long long>(version)),
        "1 for the label set of the served model, 0 for past ones.");
    if (model_info_gauge_ != nullptr && model_info_gauge_ != info) {
      model_info_gauge_->Set(0);  // a swap happened; retire the old series
    }
    info->Set(1);
    model_info_gauge_ = info;

    registry_
        ->GetGauge("hypermine_process_uptime_seconds",
                   "Seconds since this process started serving metrics.")
        ->Set(static_cast<int64_t>(metrics::ProcessUptimeSeconds()));
  });
  collector_registered_ = true;
}

Server::~Server() { Stop(); }

void Server::Drain() {
  if (draining_.exchange(true)) return;
  HM_LOG_INFO << "drain requested: /healthz -> 503, refusing new query "
                 "connections";
  loop_.Wakeup();  // the reactor applies the rest (ApplyDrain)
}

void Server::Stop() {
  MutexLock stop_lock(stop_mutex_);
  stopping_.store(true);
  // The collector captures `this`; a scrape of a shared registry after
  // this point must not reach into a dying server.
  if (collector_registered_) {
    registry_->RemoveCollector(collector_id_);
    collector_registered_ = false;
  }
  loop_.Wakeup();
  if (reactor_thread_.joinable()) reactor_thread_.join();
  // The reactor has exited and unbound the loop, so this thread now owns
  // every piece of reactor state; the assert claims the capability for
  // the analysis (and would abort if a reactor were somehow still bound).
  loop_.AssertOnLoopThread();
  // Engine batches already handed to the pool finish (their results are
  // the clients' property until the sockets actually close); the reactor
  // is gone, so their completions pile up here instead of being
  // delivered.
  std::vector<Completion> leftovers;
  {
    MutexLock lock(completion_mutex_);
    outstanding_cv_.Wait(completion_mutex_,
                         [this]() HM_REQUIRES(completion_mutex_) {
                           return outstanding_batches_ == 0;
                         });
    leftovers.swap(completions_);
  }
  for (Completion& done : leftovers) {
    {
      MutexLock lock(mutex_);
      ++stats_.batches;
      stats_.queries_answered += done.admitted;
      stats_.queries_rejected += done.rejected;
      stats_.queries_shed += done.shed;
      const uint64_t frames = done.admitted + done.rejected + done.shed;
      if (frames > 0) stats_.frames_coalesced += frames - 1;
    }
    if (!done.conn->closed) done.conn->machine.QueueWrite(std::move(done.bytes));
  }
  // One best-effort nonblocking flush so a reading client gets the
  // responses that were finished when Stop hit; a stalled client gets a
  // close instead of an unbounded wait.
  for (auto& [id, conn] : conns_) {
    while (conn->admin ? conn->http->wants_write()
                       : conn->machine.wants_write()) {
      std::string_view head = conn->admin ? conn->http->write_head()
                                          : conn->machine.write_head();
      Socket::IoResult io = conn->socket.WriteSome(head.data(), head.size());
      if (io.bytes == 0) break;
      if (conn->admin) {
        conn->http->ConsumeWrite(io.bytes);
      } else {
        conn->machine.ConsumeWrite(io.bytes);
      }
    }
    conn->closed = true;
  }
  conns_.clear();  // closes every descriptor still owned here
  open_connections_.store(0);
  listener_.Close();
  admin_listener_.Close();
}

ServerStats Server::stats() const {
  ServerStats copy;
  {
    MutexLock lock(mutex_);
    copy = stats_;
  }
  copy.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  copy.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  copy.admin_requests = admin_requests_.load(std::memory_order_relaxed);
  copy.queue_depth = in_flight_.load(std::memory_order_relaxed);
  copy.queue_depth_peak = queue_depth_peak_.load(std::memory_order_relaxed);
  return copy;
}

void Server::ReactorLoop() {
  // First act: claim the loop. The runtime bind makes every off-thread
  // use of the loop (or of a bound Connection) abort in debug builds; the
  // assert hands the "reactor" capability to the static analysis for the
  // HM_REQUIRES(loop_) methods below.
  loop_.BindToCurrentThread();
  loop_.AssertOnLoopThread();
  std::vector<EventLoop::Event> events;
  while (!stopping_.load()) {
    events.clear();
    // The 1 s ceiling is belt and braces — Stop's Wakeup() (sticky, see
    // EventLoop::Wakeup) is what actually bounds shutdown latency.
    StatusOr<size_t> waited = loop_.Wait(/*timeout_ms=*/1000, &events);
    if (!waited.ok()) {
      // A dead reactor must not look like a healthy server: stop
      // accepting (handshakes would otherwise keep completing into the
      // backlog) and reset every live socket so clients fail fast
      // instead of hanging on responses nobody will ever write.
      HM_LOG_ERROR << "reactor wait failed, shutting down: "
                   << waited.status().ToString();
      stopping_.store(true);
      listener_.Shutdown();
      for (auto& [id, conn] : conns_) conn->socket.Shutdown();
      break;
    }
    if (stopping_.load()) break;
    DrainCompletions();
    if (draining_.load() && !drain_applied_) ApplyDrain();
    for (const EventLoop::Event& event : events) {
      if (event.timer) {
        if (event.tag == kReapTimerTag) {
          ReapIdle();
        } else if (event.tag == kStallTimerTag) {
          CheckStalls();
        } else if (event.tag == kAcceptRetryTimerTag) {
          // Descriptor pressure may have passed; listen again.
          loop_.CancelTimer(kAcceptRetryTimerTag);
          (void)loop_.Update(listener_.fd(), kListenerTag, /*read=*/true,
                             /*write=*/false);
          AcceptPending(/*admin=*/false);
        } else if (event.tag == kAdminAcceptRetryTimerTag) {
          loop_.CancelTimer(kAdminAcceptRetryTimerTag);
          (void)loop_.Update(admin_listener_.fd(), kAdminListenerTag,
                             /*read=*/true, /*write=*/false);
          AcceptPending(/*admin=*/true);
        }
        continue;
      }
      if (event.tag == kListenerTag) {
        AcceptPending(/*admin=*/false);
        continue;
      }
      if (event.tag == kAdminListenerTag) {
        AcceptPending(/*admin=*/true);
        continue;
      }
      HandleConnEvent(event);
    }
  }
  // Last act: release the loop, making Stop()'s post-join teardown (which
  // runs on whatever thread called it) legal again.
  loop_.UnbindThread();
  // Leave conns_ and the completion queue for Stop(): it joins this
  // thread first, so it owns them from here on.
}

void Server::AcceptPending(bool admin) {
  Listener& listener = admin ? admin_listener_ : listener_;
  const uint64_t listener_tag = admin ? kAdminListenerTag : kListenerTag;
  const uint64_t retry_tag =
      admin ? kAdminAcceptRetryTimerTag : kAcceptRetryTimerTag;
  while (!stopping_.load()) {
    StatusOr<Socket> accepted = listener.Accept();
    if (!accepted.ok()) {
      if (Listener::WouldBlock(accepted.status())) return;
      if (accepted.status().code() == StatusCode::kFailedPrecondition) {
        return;  // concurrent shutdown
      }
      // EMFILE or a transient network failure. The pending connection
      // stays in the backlog, so a level-triggered loop would spin on it;
      // mute the listener and retry on a timer instead.
      HM_LOG_WARNING << "accept failed: " << accepted.status().ToString()
                     << "; retrying in 100 ms";
      (void)loop_.Update(listener.fd(), listener_tag, /*read=*/false,
                         /*write=*/false);
      loop_.AddTimer(retry_tag, 100);
      return;
    }
    if (admin && admin_conns_ >= kMaxAdminConnections) {
      HM_LOG_WARNING << "admin connection rejected: "
                     << kMaxAdminConnections << " already open";
      continue;  // socket closes as `accepted` dies
    }
    if (!admin && draining_.load()) {
      // A draining server takes no new work (ApplyDrain also mutes the
      // listener; this covers the race before it runs). The close reads
      // as a refused connection — clients retry elsewhere.
      HM_LOG_INFO << "connection refused: draining";
      MutexLock lock(mutex_);
      ++stats_.connections_rejected;
      continue;
    }
    if (!admin && conns_.size() - admin_conns_ >= options_.max_connections) {
      HM_LOG_INFO << "connection rejected: max_connections ("
                  << options_.max_connections << ") reached";
      MutexLock lock(mutex_);
      ++stats_.connections_rejected;
      continue;
    }
    if (!accepted->SetNonBlocking(true).ok()) continue;

    Connection::Options machine_options;
    machine_options.max_frame_bytes = options_.max_query_bytes;
    machine_options.write_high_water = options_.write_high_water;
    auto conn = std::make_shared<Conn>(machine_options);
    conn->id = next_connection_id_++;
    conn->socket = std::move(*accepted);
    conn->last_activity = std::chrono::steady_clock::now();
    // Ties the connection's state machine to this reactor: debug builds
    // abort if any other thread ever drives it.
    conn->machine.BindLoop(&loop_);
    if (admin) {
      conn->admin = true;
      conn->http = std::make_unique<HttpConnection>();
    }
    Status added = loop_.Add(conn->socket.fd(), conn->id, /*read=*/true,
                             /*write=*/false);
    if (!added.ok()) {
      HM_LOG_ERROR << "cannot register connection: " << added.ToString();
      continue;
    }
    conns_.emplace(conn->id, conn);
    if (admin) ++admin_conns_;
    open_connections_.store(conns_.size(), std::memory_order_relaxed);
    HM_LOG_INFO << (admin ? "admin" : "query") << " connection #"
                << conn->id << " accepted (" << conns_.size() << " open)";
    if (!admin) {
      MutexLock lock(mutex_);
      ++stats_.connections_accepted;
    }
  }
}

void Server::HandleConnEvent(const EventLoop::Event& event) {
  auto it = conns_.find(event.tag);
  if (it == conns_.end()) return;  // closed earlier this same wait round
  Conn* conn = it->second.get();
  if (event.readable) ReadFromConn(conn);
  if (event.writable) FlushWrites(conn);
  if (event.hangup && !event.readable && !event.writable) {
    // Full hangup with nothing to transfer: the socket is dead, and with
    // no interest bits set a level-triggered loop would report it
    // forever. Resolve it now.
    conn->dead = true;
  }
  AfterEvent(conn);
}

void Server::ReadFromConn(Conn* conn) {
  while (conn->admin ? conn->http->wants_read()
                     : conn->machine.wants_read()) {
    Socket::IoResult io =
        conn->socket.ReadSome(read_scratch_.data(), read_scratch_.size());
    if (io.bytes > 0) {
      const std::string_view data(read_scratch_.data(), io.bytes);
      if (conn->admin) {
        conn->http->Ingest(data);
      } else {
        conn->machine.Ingest(data);
        bytes_read_.fetch_add(io.bytes, std::memory_order_relaxed);
      }
      conn->last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (io.would_block) return;
    if (io.closed) {
      if (conn->admin) {
        conn->http->OnPeerClosed();
      } else {
        conn->machine.OnPeerClosed();
      }
      return;
    }
    // Transport error: nothing can be read or written reliably anymore.
    conn->dead = true;
    return;
  }
}

void Server::FlushWrites(Conn* conn) {
  while (conn->admin ? conn->http->wants_write()
                     : conn->machine.wants_write()) {
    std::string_view head = conn->admin ? conn->http->write_head()
                                        : conn->machine.write_head();
    Socket::IoResult io = conn->socket.WriteSome(head.data(), head.size());
    if (io.bytes > 0) {
      if (conn->admin) {
        conn->http->ConsumeWrite(io.bytes);
      } else {
        conn->machine.ConsumeWrite(io.bytes);
        bytes_written_.fetch_add(io.bytes, std::memory_order_relaxed);
      }
      conn->last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (io.would_block) return;
    conn->dead = true;
    return;
  }
}

void Server::AfterEvent(Conn* conn) {
  if (conn->closed) return;
  if (conn->dead) {
    CloseConn(conn);
    return;
  }
  if (conn->admin) {
    ServeAdminRequests(conn);
    if (conn->http->wants_write()) FlushWrites(conn);
    if (conn->dead) {
      CloseConn(conn);
      return;
    }
    const bool stream_over = conn->http->corrupt() ||
                             conn->http->peer_closed() ||
                             conn->http->close_requested();
    if (stream_over && !conn->http->wants_write()) {
      CloseConn(conn);
      return;
    }
    const bool want_read = conn->http->wants_read();
    const bool want_write = conn->http->wants_write();
    if (want_read != conn->want_read || want_write != conn->want_write) {
      conn->want_read = want_read;
      conn->want_write = want_write;
      (void)loop_.Update(conn->socket.fd(), conn->id, want_read, want_write);
    }
    return;
  }
  // Write-drain stage latency: the queue just emptied (or never filled).
  if (conn->write_timing && !conn->machine.wants_write()) {
    conn->write_timing = false;
    h_write_drain_->Observe(SecondsSince(conn->write_start));
  }
  // Stall clock: runs only while the machine sits in the SAME partial
  // frame (see Conn::in_frame).
  if (!conn->machine.mid_frame()) {
    conn->in_frame = false;
  } else if (!conn->in_frame ||
             conn->frames_at_stall_start != conn->machine.frames_parsed()) {
    conn->in_frame = true;
    conn->frames_at_stall_start = conn->machine.frames_parsed();
    conn->frame_start = std::chrono::steady_clock::now();
  }
  // A draining server closes each query connection the moment it has
  // nothing in flight — answered, flushed, and quiet counts as finished
  // even though the peer would happily keep the stream open.
  if (draining_.load() && !conn->batch_in_flight &&
      conn->machine.pending_frames() == 0 && !conn->machine.wants_write()) {
    CloseConn(conn);
    return;
  }
  if (!conn->batch_in_flight && conn->machine.pending_frames() > 0 &&
      !stopping_.load()) {
    SubmitBatch(conn);
  }
  const bool stream_over =
      conn->machine.corrupt() || conn->machine.peer_closed();
  if (stream_over && !conn->batch_in_flight &&
      conn->machine.pending_frames() == 0 &&
      !conn->machine.wants_write()) {
    // Decoded frames were answered and flushed; nothing more can arrive.
    CloseConn(conn);
    return;
  }
  const bool want_read = conn->machine.wants_read();
  const bool want_write = conn->machine.wants_write();
  if (want_read != conn->want_read || want_write != conn->want_write) {
    conn->want_read = want_read;
    conn->want_write = want_write;
    (void)loop_.Update(conn->socket.fd(), conn->id, want_read, want_write);
  }
}

void Server::ServeAdminRequests(Conn* conn) {
  HttpConnection* http = conn->http.get();
  HttpRequest request;
  while (!http->close_requested() && http->TakeRequest(&request)) {
    HttpResponse response = RouteAdmin(request);
    http->QueueWrite(EncodeHttpResponse(response, request.keep_alive));
    if (!request.keep_alive) http->MarkClose();
    admin_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  if (http->corrupt() && !http->close_requested()) {
    // One diagnosis, then close after the flush; later bytes are ignored
    // by the state machine, so the 400 cannot be followed by anything.
    HttpResponse bad;
    bad.status = http->error().message().find("request head exceeds") !=
                         std::string_view::npos
                     ? 431
                     : 400;
    bad.body = std::string(http->error().message()) + "\n";
    http->QueueWrite(EncodeHttpResponse(bad, /*keep_alive=*/false));
    http->MarkClose();
    admin_requests_.fetch_add(1, std::memory_order_relaxed);
  }
}

HttpResponse Server::RouteAdmin(const HttpRequest& request) {
  HttpResponse response;
  if (request.method != "GET") {
    response.status = 405;
    response.headers.emplace_back("Allow", "GET");
    response.body = "only GET is supported on the admin plane\n";
    return response;
  }
  if (request.path == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = registry_->PrometheusText();
  } else if (request.path == "/healthz") {
    // 503 during drain or stop; a model is loaded whenever the server
    // exists (Engine checks at construction), so "startup" ends before
    // Start returns and the port is even reachable.
    const bool healthy = !stopping_.load() && !draining_.load();
    response.status = healthy ? 200 : 503;
    response.body = healthy ? "ok\n" : "draining\n";
  } else if (request.path == "/statusz") {
    response.content_type = "application/json; charset=utf-8";
    response.body = StatuszJson(engine_, this, registry_);
  } else {
    response.status = 404;
    response.body = "not found; try /metrics, /healthz or /statusz\n";
  }
  return response;
}

void Server::SubmitBatch(Conn* conn) {
  std::vector<PendingFrame> frames =
      conn->machine.TakeBatch(options_.max_batch);
  conn->batch_in_flight = true;
  {
    MutexLock lock(completion_mutex_);
    ++outstanding_batches_;
  }
  std::shared_ptr<Conn> shared = conns_.at(conn->id);
  pool_->Submit(
      [this, shared = std::move(shared), frames = std::move(frames),
       submitted = std::chrono::steady_clock::now()]() mutable {
        ExecuteBatch(std::move(shared), std::move(frames), submitted);
      });
}

void Server::CloseConn(Conn* conn) {
  conn->closed = true;
  (void)loop_.Remove(conn->socket.fd());
  if (conn->admin && admin_conns_ > 0) --admin_conns_;
  HM_LOG_INFO << (conn->admin ? "admin" : "query") << " connection #"
              << conn->id << " closed";
  // The map's shared_ptr may be the last reference (closing the socket
  // now) or an in-flight batch may briefly outlive it — either way the
  // completion sees `closed` and discards its bytes.
  conns_.erase(conn->id);
  open_connections_.store(conns_.size(), std::memory_order_relaxed);
}

void Server::ReapIdle() {
  const auto now = std::chrono::steady_clock::now();
  const auto timeout = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<Conn*> idle;
  for (auto& [id, conn] : conns_) {
    if (conn->batch_in_flight || conn->machine.pending_frames() > 0 ||
        conn->machine.wants_write()) {
      continue;  // work in progress is not idleness
    }
    if (now - conn->last_activity >= timeout) idle.push_back(conn.get());
  }
  for (Conn* conn : idle) {
    HM_LOG_INFO << (conn->admin ? "admin" : "query") << " connection #"
                << conn->id << " reaped after " << options_.idle_timeout_ms
                << " ms idle";
    const bool was_admin = conn->admin;
    CloseConn(conn);
    if (was_admin) continue;  // admin reaps are not query-plane stats
    MutexLock lock(mutex_);
    ++stats_.connections_reaped;
  }
}

void Server::CheckStalls() {
  const auto now = std::chrono::steady_clock::now();
  const auto timeout = std::chrono::milliseconds(options_.stall_timeout_ms);
  std::vector<Conn*> stalled;
  for (auto& [id, conn] : conns_) {
    if (conn->admin || !conn->in_frame) continue;
    if (now - conn->frame_start >= timeout) stalled.push_back(conn.get());
  }
  for (Conn* conn : stalled) {
    HM_LOG_WARNING << "query connection #" << conn->id
                   << " closed: mid-frame stall exceeded "
                   << options_.stall_timeout_ms << " ms (slow loris?)";
    CloseConn(conn);
    MutexLock lock(mutex_);
    ++stats_.connections_stalled;
  }
}

void Server::ApplyDrain() {
  drain_applied_ = true;
  // Mute the query listener: the backlog stops being accepted, so new
  // connects queue briefly and then fail instead of reaching a server
  // that would refuse them anyway. The admin listener stays live.
  (void)loop_.Update(listener_.fd(), kListenerTag, /*read=*/false,
                     /*write=*/false);
  // Connections with in-flight work close via AfterEvent once answered
  // and flushed; everything already quiet closes now.
  std::vector<Conn*> idle;
  for (auto& [id, conn] : conns_) {
    if (conn->admin || conn->batch_in_flight ||
        conn->machine.pending_frames() > 0 || conn->machine.wants_write()) {
      continue;
    }
    idle.push_back(conn.get());
  }
  for (Conn* conn : idle) CloseConn(conn);
  HM_LOG_INFO << "drain applied: " << idle.size()
              << " idle query connections closed, "
              << (conns_.size() - admin_conns_) << " still finishing";
}

void Server::DrainCompletions() {
  std::vector<Completion> done;
  {
    MutexLock lock(completion_mutex_);
    done.swap(completions_);
  }
  for (Completion& completion : done) {
    {
      MutexLock lock(mutex_);
      ++stats_.batches;
      stats_.queries_answered += completion.admitted;
      stats_.queries_rejected += completion.rejected;
      stats_.queries_shed += completion.shed;
      const uint64_t frames =
          completion.admitted + completion.rejected + completion.shed;
      if (frames > 0) stats_.frames_coalesced += frames - 1;
    }
    Conn* conn = completion.conn.get();
    if (conn->closed) continue;  // dropped while the batch executed
    conn->batch_in_flight = false;
    const bool was_draining = conn->machine.wants_write();
    conn->machine.QueueWrite(std::move(completion.bytes));
    if (!was_draining && conn->machine.wants_write() &&
        !conn->write_timing) {
      conn->write_timing = true;
      conn->write_start = std::chrono::steady_clock::now();
    }
    FlushWrites(conn);
    AfterEvent(conn);
  }
}

void Server::ExecuteBatch(std::shared_ptr<Conn> conn,
                          std::vector<PendingFrame> frames,
                          std::chrono::steady_clock::time_point submitted) {
  h_queue_wait_->Observe(SecondsSince(submitted));
  std::string out;
  size_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;
  BuildResponses(&frames, &conn->served, &out, &admitted, &rejected, &shed);
  {
    MutexLock lock(completion_mutex_);
    completions_.push_back(Completion{std::move(conn), std::move(out),
                                      admitted, rejected, shed});
  }
  loop_.Wakeup();
  // Last: once Stop() observes the decrement it may tear the server
  // down, so the decrement and the notify both happen under the lock —
  // Stop's predicate wait cannot return (and free the cv) until this
  // task releases the mutex, after which it touches no member again.
  {
    MutexLock lock(completion_mutex_);
    --outstanding_batches_;
    outstanding_cv_.NotifyAll();
  }
}

void Server::BuildResponses(std::vector<PendingFrame>* frames,
                            uint64_t* served, std::string* out,
                            size_t* admitted_out, uint64_t* rejected_out,
                            uint64_t* shed_out) {
  std::vector<WireResponse> responses(frames->size());
  std::vector<api::QueryRequest> admitted;
  std::vector<size_t> admitted_slot;
  uint64_t rejected = 0;
  uint64_t shed = 0;
  const auto now = std::chrono::steady_clock::now();
  const auto shed_budget =
      std::chrono::milliseconds(options_.max_queue_wait_ms);

  for (size_t i = 0; i < frames->size(); ++i) {
    PendingFrame& frame = (*frames)[i];
    if (!frame.pre.ok()) {
      responses[i] = ErrorResponse(frame.pre);
      ++rejected;
      continue;
    }
    if (frame.header.version != kProtocolVersion) {
      responses[i] = ErrorResponse(Status::Unimplemented(
          StrFormat("protocol version %u not supported (server speaks %u)",
                    unsigned{frame.header.version},
                    unsigned{kProtocolVersion})));
      ++rejected;
      continue;
    }
    if (frame.header.type != static_cast<uint16_t>(FrameType::kQuery)) {
      // kUnimplemented, matching the spec's §5 table: a frame type this
      // server does not speak is a capability gap (a future protocol
      // feature), not a malformed request that can never succeed.
      responses[i] = ErrorResponse(Status::Unimplemented(
          StrFormat("frame type %u not supported here (want QUERY)",
                    unsigned{frame.header.type})));
      ++rejected;
      continue;
    }
    api::QueryRequest request;
    Status decoded = DecodeQueryBody(frame.body, &request);
    if (!decoded.ok()) {
      responses[i] = ErrorResponse(decoded);
      ++rejected;
      continue;
    }
    // Load shedding: a query that already out-waited its budget is worth
    // more as a fast kUnavailable than as a late answer — under overload
    // the engine's time goes to queries that can still arrive in time.
    // Per-frame arrival stamps mean each query's OWN wait decides, not
    // its batch's.
    if (options_.max_queue_wait_ms > 0 && frame.arrival != decltype(now){} &&
        now - frame.arrival > shed_budget) {
      responses[i] = ErrorResponse(Status::Unavailable(
          StrFormat("shed: waited past the %d ms queue budget; retry",
                    options_.max_queue_wait_ms)));
      ++shed;
      continue;
    }
    if (options_.max_queries_per_connection != 0 &&
        *served >= options_.max_queries_per_connection) {
      responses[i] = ErrorResponse(Status::ResourceExhausted(
          StrFormat("per-connection query quota (%llu) exhausted",
                    static_cast<unsigned long long>(
                        options_.max_queries_per_connection))));
      ++rejected;
      continue;
    }
    // Depth is tracked unconditionally (the stats/gauge need it) and only
    // *enforced* when a cap is configured.
    const size_t depth = in_flight_.fetch_add(1) + 1;
    UpdateMax(&queue_depth_peak_, depth);
    if (options_.max_queue_depth != 0 && depth > options_.max_queue_depth) {
      in_flight_.fetch_sub(1);
      responses[i] = ErrorResponse(Status::ResourceExhausted(
          StrFormat("server queue depth (%zu) exceeded; retry later",
                    options_.max_queue_depth)));
      ++rejected;
      continue;
    }
    ++*served;
    admitted_slot.push_back(i);
    admitted.push_back(std::move(request));
  }

  if (!admitted.empty()) {
    std::shared_ptr<const api::Model> model;
    std::vector<StatusOr<api::QueryResponse>> results;
    {
      metrics::ScopedTimer timer(h_engine_batch_);
      results = engine_->QueryBatch(admitted, &model);
    }
    in_flight_.fetch_sub(admitted.size());
    for (size_t j = 0; j < results.size(); ++j) {
      responses[admitted_slot[j]] =
          ToWire(results[j], *model, admitted[j].kind);
    }
  }

  // Responses go back in request order, one contiguous buffer per batch.
  for (size_t i = 0; i < frames->size(); ++i) {
    std::string encoded;
    Status status = EncodeResponseFrame((*frames)[i].header.request_id,
                                        responses[i], &encoded);
    if (!status.ok()) {
      // A name/message too long for the wire; strip the payload rather
      // than abort — the encode of a bare error cannot fail.
      encoded.clear();
      HM_CHECK_OK(EncodeResponseFrame(
          (*frames)[i].header.request_id,
          ErrorResponse(Status::Internal("response exceeds wire limits")),
          &encoded));
    }
    *out += encoded;
  }
  *admitted_out = admitted.size();
  *rejected_out = rejected;
  *shed_out = shed;
}

std::string StatuszJson(api::Engine* engine, const Server* server,
                        metrics::Registry* registry) {
  HM_CHECK(engine != nullptr);
  if (registry == nullptr) registry = &metrics::DefaultRegistry();
  const std::shared_ptr<const api::Model> model = engine->model();
  const api::ModelSpec& spec = model->spec();
  const api::CacheStats cache = engine->cache_stats();

  std::string out = "{\n";
  out += StrFormat(
      "  \"model\": {\"version\": %llu, \"vertices\": %zu, \"edges\": %zu,\n",
      static_cast<unsigned long long>(model->version()),
      model->num_vertices(), model->num_edges());
  out += StrFormat(
      "    \"spec\": {\"config\": {\"k\": %zu, \"gamma_edge\": %.6g, "
      "\"gamma_hyper\": %.6g, \"restrict_pairs_to_edges\": %s, "
      "\"keep_pairs_without_edges\": %s},\n",
      spec.config.k, spec.config.gamma_edge, spec.config.gamma_hyper,
      spec.config.restrict_pairs_to_edges ? "true" : "false",
      spec.config.keep_pairs_without_edges ? "true" : "false");
  out += "    \"discretization\": \"" +
         metrics::JsonEscape(spec.discretization) + "\",\n";
  out += StrFormat(
      "    \"provenance\": {\"source\": \"%s\", \"git_sha\": \"%s\", "
      "\"note\": \"%s\", \"created_unix\": %llu}}},\n",
      metrics::JsonEscape(spec.provenance.source).c_str(),
      metrics::JsonEscape(spec.provenance.git_sha).c_str(),
      metrics::JsonEscape(spec.provenance.note).c_str(),
      static_cast<unsigned long long>(spec.provenance.created_unix));
  out += StrFormat(
      "  \"engine\": {\"cache\": {\"hits\": %llu, \"misses\": %llu, "
      "\"evictions\": %llu}, \"swaps\": %llu, \"threads\": %zu},\n",
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.evictions),
      static_cast<unsigned long long>(engine->swap_count()),
      engine->num_threads());
  out += StrFormat(
      "  \"build\": {\"git_sha\": \"%s\", \"build_type\": \"%s\"},\n",
      metrics::JsonEscape(GitSha()).c_str(),
      metrics::JsonEscape(BuildType()).c_str());
  out += StrFormat("  \"uptime_seconds\": %.3f,\n",
                   metrics::ProcessUptimeSeconds());
  if (server != nullptr) {
    const ServerStats s = server->stats();
    out += StrFormat(
        "  \"server\": {\"port\": %u, \"admin_port\": %u, "
        "\"draining\": %s, "
        "\"connections_accepted\": %llu, \"connections_rejected\": %llu, "
        "\"connections_reaped\": %llu, \"connections_stalled\": %llu, "
        "\"batches\": %llu, "
        "\"queries_answered\": %llu, \"queries_rejected\": %llu, "
        "\"queries_shed\": %llu, "
        "\"frames_coalesced\": %llu, \"bytes_read\": %llu, "
        "\"bytes_written\": %llu, \"queue_depth\": %zu, "
        "\"queue_depth_peak\": %zu, \"admin_requests\": %llu},\n",
        unsigned{server->port()}, unsigned{server->admin_port()},
        server->draining() ? "true" : "false",
        static_cast<unsigned long long>(s.connections_accepted),
        static_cast<unsigned long long>(s.connections_rejected),
        static_cast<unsigned long long>(s.connections_reaped),
        static_cast<unsigned long long>(s.connections_stalled),
        static_cast<unsigned long long>(s.batches),
        static_cast<unsigned long long>(s.queries_answered),
        static_cast<unsigned long long>(s.queries_rejected),
        static_cast<unsigned long long>(s.queries_shed),
        static_cast<unsigned long long>(s.frames_coalesced),
        static_cast<unsigned long long>(s.bytes_read),
        static_cast<unsigned long long>(s.bytes_written), s.queue_depth,
        s.queue_depth_peak,
        static_cast<unsigned long long>(s.admin_requests));
  }
  out += "  \"metrics\": " + registry->JsonText() + "\n";
  out += "}\n";
  return out;
}

}  // namespace hypermine::net
