#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/model.h"
#include "util/build_info.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace hypermine::net {
namespace {

/// Event-loop tags. Connection ids count up from 1 within each reactor
/// (tags never cross loops, so per-reactor namespaces suffice); the query
/// listener owns 0 and the admin listener the far end of the space (one
/// below ~0, which the loop reserves for its wakeup eventfd); timers live
/// in their own tag namespace.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kAdminListenerTag = ~uint64_t{0} - 1;
constexpr uint64_t kReapTimerTag = 1;
constexpr uint64_t kAcceptRetryTimerTag = 2;
constexpr uint64_t kAdminAcceptRetryTimerTag = 3;
constexpr uint64_t kStallTimerTag = 4;

/// Admin connections are exempt from max_connections (a saturated query
/// plane must not lock out the scraper diagnosing it) but capped here —
/// the admin port serves one Prometheus and one curl, not a fleet.
constexpr size_t kMaxAdminConnections = 64;

/// Sanity ceiling on reactor threads: a typo (--reactors=10000) should
/// fail loudly, not spawn ten thousand event loops.
constexpr size_t kMaxReactors = 128;

/// Raises an atomic high-water mark (relaxed CAS loop).
void UpdateMax(std::atomic<size_t>* max, size_t value) {
  size_t seen = max->load(std::memory_order_relaxed);
  while (seen < value && !max->compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

WireResponse ErrorResponse(const Status& status) {
  WireResponse response;
  response.code = status.code();
  response.message = status.message();
  return response;
}

/// Flattens one engine answer into its wire form, resolving vertex ids to
/// names against the model that produced them (guaranteed by QueryBatch's
/// model_out — NOT the engine's current model, which a racing Swap may
/// already have replaced).
WireResponse ToWire(const StatusOr<api::QueryResponse>& result,
                    const api::Model& model,
                    api::QueryRequest::Kind kind) {
  if (!result.ok()) return ErrorResponse(result.status());
  WireResponse response;
  response.kind = kind;
  response.model_version = result->model_version;
  response.from_cache = result->from_cache;
  if (!model.has_graph()) {
    return ErrorResponse(
        Status::Internal("served model has no graph to resolve names"));
  }
  const core::DirectedHypergraph& graph = model.graph();
  response.ranked.reserve(result->ranked.size());
  for (const serve::RankedConsequent& r : result->ranked) {
    response.ranked.push_back(WireConsequent{graph.vertex_name(r.head),
                                             r.acv});
  }
  response.closure.reserve(result->closure.size());
  for (core::VertexId v : result->closure) {
    response.closure.push_back(graph.vertex_name(v));
  }
  return response;
}

}  // namespace

StatusOr<std::unique_ptr<Server>> Server::Start(api::Engine* engine,
                                                ServerOptions options) {
  HM_CHECK(engine != nullptr);
  if (options.max_batch == 0) {
    return Status::InvalidArgument("ServerOptions::max_batch must be >= 1");
  }
  if (options.max_connections == 0) {
    return Status::InvalidArgument(
        "ServerOptions::max_connections must be >= 1");
  }
  if (options.max_query_bytes > kMaxBodyBytes) {
    return Status::InvalidArgument(
        "ServerOptions::max_query_bytes exceeds the protocol cap");
  }
  if (options.idle_timeout_ms < 0) {
    return Status::InvalidArgument(
        "ServerOptions::idle_timeout_ms must be >= 0");
  }
  if (options.max_queue_wait_ms < 0) {
    return Status::InvalidArgument(
        "ServerOptions::max_queue_wait_ms must be >= 0");
  }
  if (options.stall_timeout_ms < 0) {
    return Status::InvalidArgument(
        "ServerOptions::stall_timeout_ms must be >= 0");
  }
  if (options.admin_port > 65535) {
    return Status::InvalidArgument(
        "ServerOptions::admin_port must fit a TCP port");
  }
  const size_t reactor_count =
      options.num_reactors == 0
          ? std::max<size_t>(1, ThreadPool::HardwareThreads())
          : options.num_reactors;
  if (reactor_count > kMaxReactors) {
    return Status::InvalidArgument(
        StrFormat("ServerOptions::num_reactors (%zu) exceeds the sanity "
                  "cap of %zu",
                  reactor_count, kMaxReactors));
  }

  // Listener plan. One reactor: the classic single listener. Multiple
  // reactors: one SO_REUSEPORT listener per reactor (the kernel spreads
  // accepts), unless handoff was requested or any sharing bind fails —
  // then reactor 0 owns the only listener and hands sockets off.
  bool handoff = reactor_count > 1 &&
                 options.accept_mode == ServerOptions::AcceptMode::kHandoff;
  std::vector<Listener> listeners;
  if (reactor_count == 1 || handoff) {
    HM_ASSIGN_OR_RETURN(Listener listener, Listener::Bind(options.port));
    HM_RETURN_IF_ERROR(listener.SetNonBlocking(true));
    listeners.push_back(std::move(listener));
  } else {
    StatusOr<Listener> first =
        Listener::Bind(options.port, /*backlog=*/128, /*reuse_port=*/true);
    if (!first.ok()) {
      HM_LOG_WARNING << "SO_REUSEPORT bind failed ("
                     << first.status().ToString()
                     << "); falling back to reactor-0 accept + handoff";
      handoff = true;
      HM_ASSIGN_OR_RETURN(Listener listener, Listener::Bind(options.port));
      HM_RETURN_IF_ERROR(listener.SetNonBlocking(true));
      listeners.push_back(std::move(listener));
    } else {
      // The first bind resolved the port (options.port may be 0); the
      // other reactors share it.
      const uint16_t shared_port = first->port();
      HM_RETURN_IF_ERROR(first->SetNonBlocking(true));
      listeners.push_back(std::move(*first));
      for (size_t i = 1; i < reactor_count; ++i) {
        StatusOr<Listener> next = Listener::Bind(
            shared_port, /*backlog=*/128, /*reuse_port=*/true);
        if (!next.ok()) {
          HM_LOG_WARNING << "SO_REUSEPORT sharing bind failed ("
                         << next.status().ToString()
                         << "); falling back to reactor-0 accept + handoff";
          handoff = true;
          listeners.resize(1);  // reactor 0 keeps the resolved port
          break;
        }
        HM_RETURN_IF_ERROR(next->SetNonBlocking(true));
        listeners.push_back(std::move(*next));
      }
    }
  }

  std::vector<std::unique_ptr<Reactor>> reactors;
  reactors.reserve(reactor_count);
  for (size_t i = 0; i < reactor_count; ++i) {
    HM_ASSIGN_OR_RETURN(EventLoop loop, EventLoop::Create());
    auto reactor = std::make_unique<Reactor>(i, std::move(loop));
    if (i < listeners.size()) {
      reactor->listener = std::move(listeners[i]);
      HM_RETURN_IF_ERROR(reactor->loop.Add(reactor->listener.fd(),
                                           kListenerTag, /*read=*/true,
                                           /*write=*/false));
    }
    // Each reactor reaps and stall-checks its own connections.
    if (options.idle_timeout_ms > 0) {
      reactor->loop.AddTimer(kReapTimerTag,
                             std::max(10, options.idle_timeout_ms / 2));
    }
    if (options.stall_timeout_ms > 0) {
      reactor->loop.AddTimer(kStallTimerTag,
                             std::max(10, options.stall_timeout_ms / 2));
    }
    reactors.push_back(std::move(reactor));
  }
  Listener admin_listener;
  if (options.admin_port >= 0) {
    HM_ASSIGN_OR_RETURN(
        admin_listener,
        Listener::Bind(static_cast<uint16_t>(options.admin_port)));
    HM_RETURN_IF_ERROR(admin_listener.SetNonBlocking(true));
    // The admin plane always lives on reactor 0.
    HM_RETURN_IF_ERROR(reactors[0]->loop.Add(admin_listener.fd(),
                                             kAdminListenerTag,
                                             /*read=*/true,
                                             /*write=*/false));
  }
  // Not make_unique: the constructor is private.
  std::unique_ptr<Server> server(
      new Server(engine, options, handoff, std::move(reactors),
                 std::move(admin_listener)));
  for (auto& reactor : server->reactors_) {
    reactor->thread = std::thread(
        [s = server.get(), r = reactor.get()] { s->ReactorLoop(r); });
  }
  return server;
}

Server::Server(api::Engine* engine, ServerOptions options, bool handoff_mode,
               std::vector<std::unique_ptr<Reactor>> reactors,
               Listener admin_listener)
    : engine_(engine),
      options_(options),
      handoff_mode_(handoff_mode),
      reactors_(std::move(reactors)),
      admin_listener_(std::move(admin_listener)) {
  port_ = reactors_[0]->listener.port();
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else {
    const size_t requested =
        options_.num_threads != 0
            ? options_.num_threads
            : std::max<size_t>(4, ThreadPool::HardwareThreads());
    owned_pool_ = std::make_unique<ThreadPool>(requested);
    pool_ = owned_pool_.get();
  }

  registry_ = options_.registry != nullptr ? options_.registry
                                           : &metrics::DefaultRegistry();
  h_queue_wait_ = registry_->GetHistogram(
      "hypermine_net_queue_wait_seconds",
      "Reactor-to-worker wait per batch: TakeBatch to ExecuteBatch start.");
  h_engine_batch_ = registry_->GetHistogram(
      "hypermine_engine_batch_seconds",
      "Wall time of api::Engine::QueryBatch per admitted batch.");
  h_write_drain_ = registry_->GetHistogram(
      "hypermine_net_write_drain_seconds",
      "Response write-queue lifetime: first byte queued to queue empty.");
  // Bridge the server's own counters (and the engine's) into the registry
  // at scrape time instead of double-counting on the hot path: the
  // collector runs once per render, the serving path pays nothing extra.
  collector_id_ = registry_->AddCollector([this] {
    const ServerStats s = stats();
    registry_
        ->GetCounter("hypermine_net_connections_accepted_total",
                     "Query-plane connections accepted.")
        ->BridgeTo(s.connections_accepted);
    registry_
        ->GetCounter("hypermine_net_connections_rejected_total",
                     "Accepts closed because max_connections was reached.")
        ->BridgeTo(s.connections_rejected);
    registry_
        ->GetCounter("hypermine_net_connections_reaped_total",
                     "Connections closed by the idle-timeout reaper.")
        ->BridgeTo(s.connections_reaped);
    registry_
        ->GetCounter("hypermine_net_connections_stalled_total",
                     "Connections closed by the mid-frame stall timer "
                     "(slow loris).")
        ->BridgeTo(s.connections_stalled);
    registry_
        ->GetCounter("hypermine_net_queries_shed_total",
                     "Queries answered kUnavailable by load shedding "
                     "(out-waited max_queue_wait_ms) or during drain.")
        ->BridgeTo(s.queries_shed);
    registry_
        ->GetGauge("hypermine_net_draining",
                   "1 once Drain() was requested, else 0.")
        ->Set(draining_.load() ? 1 : 0);
    registry_
        ->GetCounter("hypermine_net_batches_total",
                     "Engine batches executed.")
        ->BridgeTo(s.batches);
    registry_
        ->GetCounter("hypermine_net_queries_answered_total",
                     "Queries the engine ran (per-query errors included).")
        ->BridgeTo(s.queries_answered);
    registry_
        ->GetCounter("hypermine_net_queries_rejected_total",
                     "Queries rejected before the engine (quota, queue "
                     "depth, malformed frames).")
        ->BridgeTo(s.queries_rejected);
    registry_
        ->GetCounter("hypermine_net_frames_coalesced_total",
                     "Frames that shared an engine batch with an earlier "
                     "frame (batch of n adds n-1).")
        ->BridgeTo(s.frames_coalesced);
    registry_
        ->GetCounter("hypermine_net_bytes_read_total",
                     "Payload bytes read off query connections.")
        ->BridgeTo(s.bytes_read);
    registry_
        ->GetCounter("hypermine_net_bytes_written_total",
                     "Payload bytes written to query connections.")
        ->BridgeTo(s.bytes_written);
    registry_
        ->GetCounter("hypermine_net_admin_requests_total",
                     "HTTP requests answered on the admin plane.")
        ->BridgeTo(s.admin_requests);
    registry_
        ->GetGauge("hypermine_net_queue_depth",
                   "Queries admitted but not yet answered, right now.")
        ->Set(static_cast<int64_t>(s.queue_depth));
    registry_
        ->GetGauge("hypermine_net_queue_depth_peak",
                   "High-water mark of hypermine_net_queue_depth.")
        ->Set(static_cast<int64_t>(s.queue_depth_peak));
    size_t open_total = 0;
    for (const ReactorStats& rs : s.per_reactor) {
      open_total += rs.open_connections;
    }
    registry_
        ->GetGauge("hypermine_net_open_connections",
                   "Connections currently owned by the reactors (admin "
                   "plane included).")
        ->Set(static_cast<int64_t>(open_total));
    registry_
        ->GetGauge("hypermine_net_reactors",
                   "Reactor threads serving this process.")
        ->Set(static_cast<int64_t>(s.per_reactor.size()));
    // Per-reactor label series: connection distribution and the per-loop
    // work queue, so a hot or wedged reactor is visible from outside.
    for (const ReactorStats& rs : s.per_reactor) {
      registry_
          ->GetCounter(
              StrFormat("hypermine_net_reactor_connections_accepted_total"
                        "{reactor=\"%zu\"}",
                        rs.index),
              "Query-plane connections accepted, by owning reactor.")
          ->BridgeTo(rs.connections_accepted);
      registry_
          ->GetCounter(
              StrFormat("hypermine_net_reactor_connections_reaped_total"
                        "{reactor=\"%zu\"}",
                        rs.index),
              "Idle-timeout reaps, by owning reactor.")
          ->BridgeTo(rs.connections_reaped);
      registry_
          ->GetGauge(StrFormat("hypermine_net_reactor_open_connections"
                               "{reactor=\"%zu\"}",
                               rs.index),
                     "Connections currently owned by this reactor.")
          ->Set(static_cast<int64_t>(rs.open_connections));
      registry_
          ->GetGauge(StrFormat("hypermine_net_reactor_outstanding_batches"
                               "{reactor=\"%zu\"}",
                               rs.index),
                     "Engine batches in flight for this reactor's "
                     "connections.")
          ->Set(static_cast<int64_t>(rs.outstanding_batches));
    }

    const api::CacheStats cache = engine_->cache_stats();
    registry_
        ->GetCounter("hypermine_engine_cache_hits_total",
                     "Engine result-cache hits.")
        ->BridgeTo(cache.hits);
    registry_
        ->GetCounter("hypermine_engine_cache_misses_total",
                     "Engine result-cache misses.")
        ->BridgeTo(cache.misses);
    registry_
        ->GetCounter("hypermine_engine_cache_evictions_total",
                     "Engine result-cache LRU evictions.")
        ->BridgeTo(cache.evictions);
    registry_
        ->GetCounter("hypermine_model_swaps_total",
                     "Lifetime api::Engine::Swap calls.")
        ->BridgeTo(engine_->swap_count());

    const uint64_t version = engine_->model()->version();
    registry_
        ->GetGauge("hypermine_model_version",
                   "version() of the currently served model.")
        ->Set(static_cast<int64_t>(version));
    metrics::Gauge* info = registry_->GetGauge(
        StrFormat("hypermine_model_info{model_version=\"%llu\"}",
                  static_cast<unsigned long long>(version)),
        "1 for the label set of the served model, 0 for past ones.");
    if (model_info_gauge_ != nullptr && model_info_gauge_ != info) {
      model_info_gauge_->Set(0);  // a swap happened; retire the old series
    }
    info->Set(1);
    model_info_gauge_ = info;

    registry_
        ->GetGauge("hypermine_process_uptime_seconds",
                   "Seconds since this process started serving metrics.")
        ->Set(static_cast<int64_t>(metrics::ProcessUptimeSeconds()));
  });
  collector_registered_ = true;
}

Server::~Server() { Stop(); }

void Server::WakeAllReactors() {
  for (auto& reactor : reactors_) reactor->loop.Wakeup();
}

void Server::Drain() {
  if (draining_.exchange(true)) return;
  HM_LOG_INFO << "drain requested: /healthz -> 503, refusing new query "
                 "connections";
  WakeAllReactors();  // each reactor applies the rest (ApplyDrain)
}

void Server::Stop() {
  MutexLock stop_lock(stop_mutex_);
  stopping_.store(true);
  // The collector captures `this`; a scrape of a shared registry after
  // this point must not reach into a dying server.
  if (collector_registered_) {
    registry_->RemoveCollector(collector_id_);
    collector_registered_ = false;
  }
  WakeAllReactors();
  for (auto& reactor : reactors_) {
    if (reactor->thread.joinable()) reactor->thread.join();
  }
  for (auto& reactor : reactors_) TeardownReactor(*reactor);
  open_query_conns_.store(0);
  admin_listener_.Close();
}

void Server::TeardownReactor(Reactor& r) {
  // The reactor thread has exited and unbound its loop, so the stopping
  // thread now owns this reactor's state; the assert claims the
  // capability for the analysis (and would abort if the reactor were
  // somehow still bound).
  r.loop.AssertOnLoopThread();
  // Engine batches already handed to the pool finish (their results are
  // the clients' property until the sockets actually close); the reactor
  // is gone, so their completions pile up here instead of being
  // delivered.
  std::vector<BatchCompletion> leftovers = r.WaitIdleAndCollect();
  for (BatchCompletion& done : leftovers) {
    ApplyBatchStats(done);
    r.batches_applied.fetch_add(1, std::memory_order_relaxed);
    if (!done.conn->closed) {
      done.conn->machine.QueueWrite(std::move(done.bytes));
    }
  }
  // One best-effort nonblocking flush so a reading client gets the
  // responses that were finished when Stop hit; a stalled client gets a
  // close instead of an unbounded wait.
  for (auto& [id, conn] : r.conns) {
    while (conn->admin ? conn->http->wants_write()
                       : conn->machine.wants_write()) {
      std::string_view head = conn->admin ? conn->http->write_head()
                                          : conn->machine.write_head();
      Socket::IoResult io = conn->socket.WriteSome(head.data(), head.size());
      if (io.bytes == 0) break;
      if (conn->admin) {
        conn->http->ConsumeWrite(io.bytes);
      } else {
        conn->machine.ConsumeWrite(io.bytes);
      }
    }
    conn->closed = true;
  }
  r.conns.clear();  // closes every descriptor still owned here
  r.open.store(0, std::memory_order_relaxed);
  r.listener.Close();
}

ServerStats Server::stats() const {
  ServerStats copy;
  {
    MutexLock lock(mutex_);
    copy = stats_;
  }
  copy.queue_depth = in_flight_.load(std::memory_order_relaxed);
  copy.queue_depth_peak = queue_depth_peak_.load(std::memory_order_relaxed);
  copy.admin_requests = admin_requests_.load(std::memory_order_relaxed);
  copy.per_reactor.reserve(reactors_.size());
  for (const auto& reactor : reactors_) {
    ReactorStats rs = reactor->snapshot();
    copy.connections_accepted += rs.connections_accepted;
    copy.connections_rejected += rs.connections_rejected;
    copy.connections_reaped += rs.connections_reaped;
    copy.connections_stalled += rs.connections_stalled;
    copy.bytes_read += rs.bytes_read;
    copy.bytes_written += rs.bytes_written;
    copy.per_reactor.push_back(std::move(rs));
  }
  return copy;
}

void Server::ReactorLoop(Reactor* r) {
  // First act: claim the loop. The runtime bind makes every off-thread
  // use of the loop (or of a bound Connection) abort in debug builds; the
  // assert hands this reactor's capability to the static analysis for the
  // HM_REQUIRES(r.loop) methods below.
  r->loop.BindToCurrentThread();
  r->loop.AssertOnLoopThread();
  std::vector<EventLoop::Event> events;
  while (!stopping_.load()) {
    events.clear();
    // The 1 s ceiling is belt and braces — Stop's Wakeup() (sticky, see
    // EventLoop::Wakeup) is what actually bounds shutdown latency.
    StatusOr<size_t> waited = r->loop.Wait(/*timeout_ms=*/1000, &events);
    if (!waited.ok()) {
      // A dead reactor must not look like a healthy server: stop
      // accepting (handshakes would otherwise keep completing into the
      // backlog) and reset every live socket so clients fail fast
      // instead of hanging on responses nobody will ever write. One dead
      // reactor takes the whole server down — a silently smaller fleet
      // would serve with capacity the operator believes exists.
      HM_LOG_ERROR << "reactor " << r->index
                   << " wait failed, shutting down: "
                   << waited.status().ToString();
      stopping_.store(true);
      r->listener.Shutdown();
      for (auto& [id, conn] : r->conns) conn->socket.Shutdown();
      WakeAllReactors();
      break;
    }
    if (stopping_.load()) break;
    AdoptHandoffs(*r);
    DrainCompletions(*r);
    if (draining_.load() && !r->drain_applied) ApplyDrain(*r);
    for (const EventLoop::Event& event : events) {
      if (event.timer) {
        if (event.tag == kReapTimerTag) {
          ReapIdle(*r);
        } else if (event.tag == kStallTimerTag) {
          CheckStalls(*r);
        } else if (event.tag == kAcceptRetryTimerTag) {
          // Descriptor pressure may have passed; listen again.
          r->loop.CancelTimer(kAcceptRetryTimerTag);
          if (r->listener.valid()) {
            (void)r->loop.Update(r->listener.fd(), kListenerTag,
                                 /*read=*/true, /*write=*/false);
            AcceptPending(*r, /*admin=*/false);
          }
        } else if (event.tag == kAdminAcceptRetryTimerTag) {
          r->loop.CancelTimer(kAdminAcceptRetryTimerTag);
          if (admin_listener_.valid()) {
            (void)r->loop.Update(admin_listener_.fd(), kAdminListenerTag,
                                 /*read=*/true, /*write=*/false);
            AcceptPending(*r, /*admin=*/true);
          }
        }
        continue;
      }
      if (event.tag == kListenerTag) {
        AcceptPending(*r, /*admin=*/false);
        continue;
      }
      if (event.tag == kAdminListenerTag) {
        AcceptPending(*r, /*admin=*/true);
        continue;
      }
      HandleConnEvent(*r, event);
    }
  }
  // Last act: release the loop, making Stop()'s post-join teardown (which
  // runs on whatever thread called it) legal again.
  r->loop.UnbindThread();
  // Leave conns and the completion queue for Stop(): it joins this
  // thread first, so it owns them from here on.
}

void Server::AcceptPending(Reactor& r, bool admin) {
  Listener& listener = admin ? admin_listener_ : r.listener;
  const uint64_t listener_tag = admin ? kAdminListenerTag : kListenerTag;
  const uint64_t retry_tag =
      admin ? kAdminAcceptRetryTimerTag : kAcceptRetryTimerTag;
  while (!stopping_.load()) {
    StatusOr<Socket> accepted = listener.Accept();
    if (!accepted.ok()) {
      if (Listener::WouldBlock(accepted.status())) return;
      if (accepted.status().code() == StatusCode::kFailedPrecondition) {
        return;  // concurrent shutdown
      }
      // EMFILE or a transient network failure. The pending connection
      // stays in the backlog, so a level-triggered loop would spin on it;
      // mute the listener and retry on a timer instead.
      HM_LOG_WARNING << "accept failed: " << accepted.status().ToString()
                     << "; retrying in 100 ms";
      (void)r.loop.Update(listener.fd(), listener_tag, /*read=*/false,
                          /*write=*/false);
      r.loop.AddTimer(retry_tag, 100);
      return;
    }
    if (admin && r.admin_conns >= kMaxAdminConnections) {
      HM_LOG_WARNING << "admin connection rejected: "
                     << kMaxAdminConnections << " already open";
      continue;  // socket closes as `accepted` dies
    }
    if (!admin && draining_.load()) {
      // A draining server takes no new work (ApplyDrain also mutes the
      // listeners; this covers the race before it runs). The close reads
      // as a refused connection — clients retry elsewhere.
      HM_LOG_INFO << "connection refused: draining";
      r.rejected.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!admin) {
      // Reserve a slot under the GLOBAL cap before any handoff, so
      // max_connections holds across reactors; every later failure path
      // (and CloseConn) releases the reservation.
      const size_t open = open_query_conns_.fetch_add(1) + 1;
      if (open > options_.max_connections) {
        open_query_conns_.fetch_sub(1);
        HM_LOG_INFO << "connection rejected: max_connections ("
                    << options_.max_connections << ") reached";
        r.rejected.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (handoff_mode_ && reactors_.size() > 1) {
        const size_t target = next_handoff_.fetch_add(
                                  1, std::memory_order_relaxed) %
                              reactors_.size();
        if (target != r.index) {
          reactors_[target]->PushHandoff(std::move(*accepted));
          continue;
        }
      }
    }
    RegisterAccepted(r, std::move(*accepted), admin);
  }
}

void Server::RegisterAccepted(Reactor& r, Socket socket, bool admin) {
  if (!socket.SetNonBlocking(true).ok()) {
    if (!admin) open_query_conns_.fetch_sub(1);
    return;
  }
  Connection::Options machine_options;
  machine_options.max_frame_bytes = options_.max_query_bytes;
  machine_options.write_high_water = options_.write_high_water;
  auto conn = std::make_shared<ReactorConn>(machine_options);
  conn->id = r.next_connection_id++;
  conn->reactor = &r;
  conn->socket = std::move(socket);
  conn->last_activity = std::chrono::steady_clock::now();
  // Ties the connection's state machine to this reactor for life: debug
  // builds abort if any other thread ever drives it.
  conn->machine.BindLoop(&r.loop);
  if (admin) {
    conn->admin = true;
    conn->http = std::make_unique<HttpConnection>();
  }
  Status added = r.loop.Add(conn->socket.fd(), conn->id, /*read=*/true,
                            /*write=*/false);
  if (!added.ok()) {
    HM_LOG_ERROR << "cannot register connection: " << added.ToString();
    if (!admin) open_query_conns_.fetch_sub(1);
    return;
  }
  r.conns.emplace(conn->id, conn);
  if (admin) ++r.admin_conns;
  r.open.store(r.conns.size(), std::memory_order_relaxed);
  if (!admin) r.accepted.fetch_add(1, std::memory_order_relaxed);
  HM_LOG_INFO << (admin ? "admin" : "query") << " connection #" << conn->id
              << " accepted on reactor " << r.index << " ("
              << r.conns.size() << " open here)";
}

void Server::AdoptHandoffs(Reactor& r) {
  if (!handoff_mode_) return;
  for (Socket& socket : r.TakeHandoffs()) {
    RegisterAccepted(r, std::move(socket), /*admin=*/false);
  }
}

void Server::HandleConnEvent(Reactor& r, const EventLoop::Event& event) {
  auto it = r.conns.find(event.tag);
  if (it == r.conns.end()) return;  // closed earlier this same wait round
  ReactorConn* conn = it->second.get();
  if (event.readable) ReadFromConn(r, conn);
  if (event.writable) FlushWrites(r, conn);
  if (event.hangup && !event.readable && !event.writable) {
    // Full hangup with nothing to transfer: the socket is dead, and with
    // no interest bits set a level-triggered loop would report it
    // forever. Resolve it now.
    conn->dead = true;
  }
  AfterEvent(r, conn);
}

void Server::ReadFromConn(Reactor& r, ReactorConn* conn) {
  while (conn->admin ? conn->http->wants_read()
                     : conn->machine.wants_read()) {
    Socket::IoResult io = conn->socket.ReadSome(r.read_scratch.data(),
                                                r.read_scratch.size());
    if (io.bytes > 0) {
      const std::string_view data(r.read_scratch.data(), io.bytes);
      if (conn->admin) {
        conn->http->Ingest(data);
      } else {
        conn->machine.Ingest(data);
        r.bytes_read.fetch_add(io.bytes, std::memory_order_relaxed);
      }
      conn->last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (io.would_block) return;
    if (io.closed) {
      if (conn->admin) {
        conn->http->OnPeerClosed();
      } else {
        conn->machine.OnPeerClosed();
      }
      return;
    }
    // Transport error: nothing can be read or written reliably anymore.
    conn->dead = true;
    return;
  }
}

void Server::FlushWrites(Reactor& r, ReactorConn* conn) {
  while (conn->admin ? conn->http->wants_write()
                     : conn->machine.wants_write()) {
    std::string_view head = conn->admin ? conn->http->write_head()
                                        : conn->machine.write_head();
    Socket::IoResult io = conn->socket.WriteSome(head.data(), head.size());
    if (io.bytes > 0) {
      if (conn->admin) {
        conn->http->ConsumeWrite(io.bytes);
      } else {
        conn->machine.ConsumeWrite(io.bytes);
        r.bytes_written.fetch_add(io.bytes, std::memory_order_relaxed);
      }
      conn->last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (io.would_block) return;
    conn->dead = true;
    return;
  }
}

void Server::AfterEvent(Reactor& r, ReactorConn* conn) {
  if (conn->closed) return;
  if (conn->dead) {
    CloseConn(r, conn);
    return;
  }
  if (conn->admin) {
    ServeAdminRequests(r, conn);
    if (conn->http->wants_write()) FlushWrites(r, conn);
    if (conn->dead) {
      CloseConn(r, conn);
      return;
    }
    const bool stream_over = conn->http->corrupt() ||
                             conn->http->peer_closed() ||
                             conn->http->close_requested();
    if (stream_over && !conn->http->wants_write()) {
      CloseConn(r, conn);
      return;
    }
    const bool want_read = conn->http->wants_read();
    const bool want_write = conn->http->wants_write();
    if (want_read != conn->want_read || want_write != conn->want_write) {
      conn->want_read = want_read;
      conn->want_write = want_write;
      (void)r.loop.Update(conn->socket.fd(), conn->id, want_read,
                          want_write);
    }
    return;
  }
  // Write-drain stage latency: the queue just emptied (or never filled).
  if (conn->write_timing && !conn->machine.wants_write()) {
    conn->write_timing = false;
    h_write_drain_->Observe(SecondsSince(conn->write_start));
  }
  // Stall clock: runs only while the machine sits in the SAME partial
  // frame (see ReactorConn::in_frame).
  if (!conn->machine.mid_frame()) {
    conn->in_frame = false;
  } else if (!conn->in_frame ||
             conn->frames_at_stall_start != conn->machine.frames_parsed()) {
    conn->in_frame = true;
    conn->frames_at_stall_start = conn->machine.frames_parsed();
    conn->frame_start = std::chrono::steady_clock::now();
  }
  // A draining server closes each query connection the moment it has
  // nothing in flight — answered, flushed, and quiet counts as finished
  // even though the peer would happily keep the stream open.
  if (draining_.load() && !conn->batch_in_flight &&
      conn->machine.pending_frames() == 0 && !conn->machine.wants_write()) {
    CloseConn(r, conn);
    return;
  }
  if (!conn->batch_in_flight && conn->machine.pending_frames() > 0 &&
      !stopping_.load()) {
    SubmitBatch(r, conn);
  }
  const bool stream_over =
      conn->machine.corrupt() || conn->machine.peer_closed();
  if (stream_over && !conn->batch_in_flight &&
      conn->machine.pending_frames() == 0 &&
      !conn->machine.wants_write()) {
    // Decoded frames were answered and flushed; nothing more can arrive.
    CloseConn(r, conn);
    return;
  }
  const bool want_read = conn->machine.wants_read();
  const bool want_write = conn->machine.wants_write();
  if (want_read != conn->want_read || want_write != conn->want_write) {
    conn->want_read = want_read;
    conn->want_write = want_write;
    (void)r.loop.Update(conn->socket.fd(), conn->id, want_read, want_write);
  }
}

void Server::ServeAdminRequests(Reactor& r, ReactorConn* conn) {
  (void)r;  // admin conns live on reactor 0; the capability is the point
  HttpConnection* http = conn->http.get();
  HttpRequest request;
  while (!http->close_requested() && http->TakeRequest(&request)) {
    HttpResponse response = RouteAdmin(request);
    http->QueueWrite(EncodeHttpResponse(response, request.keep_alive));
    if (!request.keep_alive) http->MarkClose();
    admin_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  if (http->corrupt() && !http->close_requested()) {
    // One diagnosis, then close after the flush; later bytes are ignored
    // by the state machine, so the 400 cannot be followed by anything.
    HttpResponse bad;
    bad.status = http->error().message().find("request head exceeds") !=
                         std::string_view::npos
                     ? 431
                     : 400;
    bad.body = std::string(http->error().message()) + "\n";
    http->QueueWrite(EncodeHttpResponse(bad, /*keep_alive=*/false));
    http->MarkClose();
    admin_requests_.fetch_add(1, std::memory_order_relaxed);
  }
}

HttpResponse Server::RouteAdmin(const HttpRequest& request) {
  HttpResponse response;
  if (request.method != "GET") {
    response.status = 405;
    response.headers.emplace_back("Allow", "GET");
    response.body = "only GET is supported on the admin plane\n";
    return response;
  }
  if (request.path == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = registry_->PrometheusText();
  } else if (request.path == "/healthz") {
    // 503 during drain or stop; a model is loaded whenever the server
    // exists (Engine checks at construction), so "startup" ends before
    // Start returns and the port is even reachable.
    const bool healthy = !stopping_.load() && !draining_.load();
    response.status = healthy ? 200 : 503;
    response.body = healthy ? "ok\n" : "draining\n";
  } else if (request.path == "/statusz") {
    response.content_type = "application/json; charset=utf-8";
    response.body = StatuszJson(engine_, this, registry_);
  } else {
    response.status = 404;
    response.body = "not found; try /metrics, /healthz or /statusz\n";
  }
  return response;
}

void Server::SubmitBatch(Reactor& r, ReactorConn* conn) {
  std::vector<PendingFrame> frames =
      conn->machine.TakeBatch(options_.max_batch);
  conn->batch_in_flight = true;
  r.BeginBatch();
  std::shared_ptr<ReactorConn> shared = r.conns.at(conn->id);
  pool_->Submit(
      [this, shared = std::move(shared), frames = std::move(frames),
       submitted = std::chrono::steady_clock::now()]() mutable {
        ExecuteBatch(std::move(shared), std::move(frames), submitted);
      });
}

void Server::CloseConn(Reactor& r, ReactorConn* conn) {
  conn->closed = true;
  (void)r.loop.Remove(conn->socket.fd());
  if (conn->admin) {
    if (r.admin_conns > 0) --r.admin_conns;
  } else {
    open_query_conns_.fetch_sub(1);  // release the global reservation
  }
  HM_LOG_INFO << (conn->admin ? "admin" : "query") << " connection #"
              << conn->id << " closed on reactor " << r.index;
  // The map's shared_ptr may be the last reference (closing the socket
  // now) or an in-flight batch may briefly outlive it — either way the
  // completion sees `closed` and discards its bytes.
  r.conns.erase(conn->id);
  r.open.store(r.conns.size(), std::memory_order_relaxed);
}

void Server::ReapIdle(Reactor& r) {
  const auto now = std::chrono::steady_clock::now();
  const auto timeout = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<ReactorConn*> idle;
  for (auto& [id, conn] : r.conns) {
    if (conn->batch_in_flight || conn->machine.pending_frames() > 0 ||
        conn->machine.wants_write()) {
      continue;  // work in progress is not idleness
    }
    if (now - conn->last_activity >= timeout) idle.push_back(conn.get());
  }
  for (ReactorConn* conn : idle) {
    HM_LOG_INFO << (conn->admin ? "admin" : "query") << " connection #"
                << conn->id << " reaped after " << options_.idle_timeout_ms
                << " ms idle";
    const bool was_admin = conn->admin;
    CloseConn(r, conn);
    if (was_admin) continue;  // admin reaps are not query-plane stats
    r.reaped.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::CheckStalls(Reactor& r) {
  const auto now = std::chrono::steady_clock::now();
  const auto timeout = std::chrono::milliseconds(options_.stall_timeout_ms);
  std::vector<ReactorConn*> stalled;
  for (auto& [id, conn] : r.conns) {
    if (conn->admin || !conn->in_frame) continue;
    if (now - conn->frame_start >= timeout) stalled.push_back(conn.get());
  }
  for (ReactorConn* conn : stalled) {
    HM_LOG_WARNING << "query connection #" << conn->id
                   << " closed: mid-frame stall exceeded "
                   << options_.stall_timeout_ms << " ms (slow loris?)";
    CloseConn(r, conn);
    r.stalled.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::ApplyDrain(Reactor& r) {
  r.drain_applied = true;
  // Mute this reactor's query listener: the backlog stops being accepted,
  // so new connects queue briefly and then fail instead of reaching a
  // server that would refuse them anyway. The admin listener stays live.
  if (r.listener.valid()) {
    (void)r.loop.Update(r.listener.fd(), kListenerTag, /*read=*/false,
                        /*write=*/false);
  }
  // Connections with in-flight work close via AfterEvent once answered
  // and flushed; everything already quiet closes now.
  std::vector<ReactorConn*> idle;
  for (auto& [id, conn] : r.conns) {
    if (conn->admin || conn->batch_in_flight ||
        conn->machine.pending_frames() > 0 || conn->machine.wants_write()) {
      continue;
    }
    idle.push_back(conn.get());
  }
  for (ReactorConn* conn : idle) CloseConn(r, conn);
  HM_LOG_INFO << "drain applied on reactor " << r.index << ": "
              << idle.size() << " idle query connections closed, "
              << (r.conns.size() - r.admin_conns) << " still finishing";
}

void Server::ApplyBatchStats(const BatchCompletion& done) {
  MutexLock lock(mutex_);
  ++stats_.batches;
  stats_.queries_answered += done.admitted;
  stats_.queries_rejected += done.rejected;
  stats_.queries_shed += done.shed;
  const uint64_t frames = done.admitted + done.rejected + done.shed;
  if (frames > 0) stats_.frames_coalesced += frames - 1;
}

void Server::DrainCompletions(Reactor& r) {
  std::vector<BatchCompletion> done = r.TakeCompletions();
  for (BatchCompletion& completion : done) {
    ApplyBatchStats(completion);
    r.batches_applied.fetch_add(1, std::memory_order_relaxed);
    ReactorConn* conn = completion.conn.get();
    if (conn->closed) continue;  // dropped while the batch executed
    conn->batch_in_flight = false;
    const bool was_draining = conn->machine.wants_write();
    conn->machine.QueueWrite(std::move(completion.bytes));
    if (!was_draining && conn->machine.wants_write() &&
        !conn->write_timing) {
      conn->write_timing = true;
      conn->write_start = std::chrono::steady_clock::now();
    }
    FlushWrites(r, conn);
    AfterEvent(r, conn);
  }
}

void Server::ExecuteBatch(std::shared_ptr<ReactorConn> conn,
                          std::vector<PendingFrame> frames,
                          std::chrono::steady_clock::time_point submitted) {
  h_queue_wait_->Observe(SecondsSince(submitted));
  std::string out;
  size_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;
  BuildResponses(&frames, &conn->served, &out, &admitted, &rejected, &shed);
  // Route the completion back through the connection's own reactor — the
  // pin set at registration is what keeps every per-connection touch on
  // one loop.
  Reactor* home = conn->reactor;
  home->PushCompletion(BatchCompletion{std::move(conn), std::move(out),
                                       admitted, rejected, shed});
  home->loop.Wakeup();
  // Last: once Stop() observes the outstanding count reach zero it may
  // tear the reactor down; FinishBatch's decrement-and-notify-under-lock
  // keeps the cv alive until this worker is done with it.
  home->FinishBatch();
}

void Server::BuildResponses(std::vector<PendingFrame>* frames,
                            uint64_t* served, std::string* out,
                            size_t* admitted_out, uint64_t* rejected_out,
                            uint64_t* shed_out) {
  std::vector<WireResponse> responses(frames->size());
  std::vector<api::QueryRequest> admitted;
  std::vector<size_t> admitted_slot;
  uint64_t rejected = 0;
  uint64_t shed = 0;
  const auto now = std::chrono::steady_clock::now();
  const auto shed_budget =
      std::chrono::milliseconds(options_.max_queue_wait_ms);

  for (size_t i = 0; i < frames->size(); ++i) {
    PendingFrame& frame = (*frames)[i];
    if (!frame.pre.ok()) {
      responses[i] = ErrorResponse(frame.pre);
      ++rejected;
      continue;
    }
    if (frame.header.version != kProtocolVersion) {
      responses[i] = ErrorResponse(Status::Unimplemented(
          StrFormat("protocol version %u not supported (server speaks %u)",
                    unsigned{frame.header.version},
                    unsigned{kProtocolVersion})));
      ++rejected;
      continue;
    }
    if (frame.header.type != static_cast<uint16_t>(FrameType::kQuery)) {
      // kUnimplemented, matching the spec's §5 table: a frame type this
      // server does not speak is a capability gap (a future protocol
      // feature), not a malformed request that can never succeed.
      responses[i] = ErrorResponse(Status::Unimplemented(
          StrFormat("frame type %u not supported here (want QUERY)",
                    unsigned{frame.header.type})));
      ++rejected;
      continue;
    }
    api::QueryRequest request;
    Status decoded = DecodeQueryBody(frame.body, &request);
    if (!decoded.ok()) {
      responses[i] = ErrorResponse(decoded);
      ++rejected;
      continue;
    }
    // Load shedding: a query that already out-waited its budget is worth
    // more as a fast kUnavailable than as a late answer — under overload
    // the engine's time goes to queries that can still arrive in time.
    // Per-frame arrival stamps mean each query's OWN wait decides, not
    // its batch's.
    if (options_.max_queue_wait_ms > 0 && frame.arrival != decltype(now){} &&
        now - frame.arrival > shed_budget) {
      responses[i] = ErrorResponse(Status::Unavailable(
          StrFormat("shed: waited past the %d ms queue budget; retry",
                    options_.max_queue_wait_ms)));
      ++shed;
      continue;
    }
    if (options_.max_queries_per_connection != 0 &&
        *served >= options_.max_queries_per_connection) {
      responses[i] = ErrorResponse(Status::ResourceExhausted(
          StrFormat("per-connection query quota (%llu) exhausted",
                    static_cast<unsigned long long>(
                        options_.max_queries_per_connection))));
      ++rejected;
      continue;
    }
    // Depth is tracked unconditionally (the stats/gauge need it) and only
    // *enforced* when a cap is configured.
    const size_t depth = in_flight_.fetch_add(1) + 1;
    UpdateMax(&queue_depth_peak_, depth);
    if (options_.max_queue_depth != 0 && depth > options_.max_queue_depth) {
      in_flight_.fetch_sub(1);
      responses[i] = ErrorResponse(Status::ResourceExhausted(
          StrFormat("server queue depth (%zu) exceeded; retry later",
                    options_.max_queue_depth)));
      ++rejected;
      continue;
    }
    ++*served;
    admitted_slot.push_back(i);
    admitted.push_back(std::move(request));
  }

  if (!admitted.empty()) {
    std::shared_ptr<const api::Model> model;
    std::vector<StatusOr<api::QueryResponse>> results;
    {
      metrics::ScopedTimer timer(h_engine_batch_);
      results = engine_->QueryBatch(admitted, &model);
    }
    in_flight_.fetch_sub(admitted.size());
    for (size_t j = 0; j < results.size(); ++j) {
      responses[admitted_slot[j]] =
          ToWire(results[j], *model, admitted[j].kind);
    }
  }

  // Responses go back in request order, one contiguous buffer per batch.
  for (size_t i = 0; i < frames->size(); ++i) {
    std::string encoded;
    Status status = EncodeResponseFrame((*frames)[i].header.request_id,
                                        responses[i], &encoded);
    if (!status.ok()) {
      // A name/message too long for the wire; strip the payload rather
      // than abort — the encode of a bare error cannot fail.
      encoded.clear();
      HM_CHECK_OK(EncodeResponseFrame(
          (*frames)[i].header.request_id,
          ErrorResponse(Status::Internal("response exceeds wire limits")),
          &encoded));
    }
    *out += encoded;
  }
  *admitted_out = admitted.size();
  *rejected_out = rejected;
  *shed_out = shed;
}

std::string StatuszJson(api::Engine* engine, const Server* server,
                        metrics::Registry* registry) {
  HM_CHECK(engine != nullptr);
  if (registry == nullptr) registry = &metrics::DefaultRegistry();
  const std::shared_ptr<const api::Model> model = engine->model();
  const api::ModelSpec& spec = model->spec();
  const api::CacheStats cache = engine->cache_stats();

  std::string out = "{\n";
  out += StrFormat(
      "  \"model\": {\"version\": %llu, \"vertices\": %zu, \"edges\": %zu,\n",
      static_cast<unsigned long long>(model->version()),
      model->num_vertices(), model->num_edges());
  out += StrFormat(
      "    \"spec\": {\"config\": {\"k\": %zu, \"gamma_edge\": %.6g, "
      "\"gamma_hyper\": %.6g, \"restrict_pairs_to_edges\": %s, "
      "\"keep_pairs_without_edges\": %s},\n",
      spec.config.k, spec.config.gamma_edge, spec.config.gamma_hyper,
      spec.config.restrict_pairs_to_edges ? "true" : "false",
      spec.config.keep_pairs_without_edges ? "true" : "false");
  out += "    \"discretization\": \"" +
         metrics::JsonEscape(spec.discretization) + "\",\n";
  out += StrFormat(
      "    \"provenance\": {\"source\": \"%s\", \"git_sha\": \"%s\", "
      "\"note\": \"%s\", \"created_unix\": %llu}}},\n",
      metrics::JsonEscape(spec.provenance.source).c_str(),
      metrics::JsonEscape(spec.provenance.git_sha).c_str(),
      metrics::JsonEscape(spec.provenance.note).c_str(),
      static_cast<unsigned long long>(spec.provenance.created_unix));
  out += StrFormat(
      "  \"engine\": {\"cache\": {\"hits\": %llu, \"misses\": %llu, "
      "\"evictions\": %llu, \"shards\": %zu}, \"swaps\": %llu, "
      "\"threads\": %zu},\n",
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.evictions),
      engine->cache_shards(),
      static_cast<unsigned long long>(engine->swap_count()),
      engine->num_threads());
  out += StrFormat(
      "  \"build\": {\"git_sha\": \"%s\", \"build_type\": \"%s\"},\n",
      metrics::JsonEscape(GitSha()).c_str(),
      metrics::JsonEscape(BuildType()).c_str());
  out += StrFormat("  \"uptime_seconds\": %.3f,\n",
                   metrics::ProcessUptimeSeconds());
  if (server != nullptr) {
    const ServerStats s = server->stats();
    out += StrFormat(
        "  \"server\": {\"port\": %u, \"admin_port\": %u, "
        "\"draining\": %s, \"num_reactors\": %zu, "
        "\"connections_accepted\": %llu, \"connections_rejected\": %llu, "
        "\"connections_reaped\": %llu, \"connections_stalled\": %llu, "
        "\"batches\": %llu, "
        "\"queries_answered\": %llu, \"queries_rejected\": %llu, "
        "\"queries_shed\": %llu, "
        "\"frames_coalesced\": %llu, \"bytes_read\": %llu, "
        "\"bytes_written\": %llu, \"queue_depth\": %zu, "
        "\"queue_depth_peak\": %zu, \"admin_requests\": %llu,\n",
        unsigned{server->port()}, unsigned{server->admin_port()},
        server->draining() ? "true" : "false", server->num_reactors(),
        static_cast<unsigned long long>(s.connections_accepted),
        static_cast<unsigned long long>(s.connections_rejected),
        static_cast<unsigned long long>(s.connections_reaped),
        static_cast<unsigned long long>(s.connections_stalled),
        static_cast<unsigned long long>(s.batches),
        static_cast<unsigned long long>(s.queries_answered),
        static_cast<unsigned long long>(s.queries_rejected),
        static_cast<unsigned long long>(s.queries_shed),
        static_cast<unsigned long long>(s.frames_coalesced),
        static_cast<unsigned long long>(s.bytes_read),
        static_cast<unsigned long long>(s.bytes_written), s.queue_depth,
        s.queue_depth_peak,
        static_cast<unsigned long long>(s.admin_requests));
    out += "    \"reactors\": [";
    for (size_t i = 0; i < s.per_reactor.size(); ++i) {
      const ReactorStats& rs = s.per_reactor[i];
      out += StrFormat(
          "%s{\"index\": %zu, \"connections_accepted\": %llu, "
          "\"connections_reaped\": %llu, \"open_connections\": %zu, "
          "\"batches\": %llu, \"outstanding_batches\": %zu}",
          i == 0 ? "" : ", ", rs.index,
          static_cast<unsigned long long>(rs.connections_accepted),
          static_cast<unsigned long long>(rs.connections_reaped),
          rs.open_connections,
          static_cast<unsigned long long>(rs.batches),
          rs.outstanding_batches);
    }
    out += "]},\n";
  }
  out += "  \"metrics\": " + registry->JsonText() + "\n";
  out += "}\n";
  return out;
}

}  // namespace hypermine::net
