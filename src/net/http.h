#ifndef HYPERMINE_NET_HTTP_H_
#define HYPERMINE_NET_HTTP_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace hypermine::net {

/// Minimal server-side HTTP/1.1 for the admin plane (docs/observability.md):
/// GET-only request parsing (request line + headers, no bodies), response
/// serialization, and keep-alive bookkeeping. Deliberately not a framework —
/// HttpConnection is the admin-port twin of net::Connection, a byte-in /
/// byte-out state machine with no descriptor and no blocking, so it rides
/// the same reactor (net::EventLoop) as the framed query protocol and every
/// truncation path is testable entirely in memory (tests/net/http_test.cc).

/// One parsed request. Header names are lower-cased at parse time; values
/// keep their bytes (leading/trailing whitespace trimmed).
struct HttpRequest {
  std::string method;
  /// The raw request target ("/metrics?name=x") and its path component
  /// ("/metrics") — routing matches on `path`.
  std::string target;
  std::string path;
  /// "HTTP/1.1" or "HTTP/1.0" (anything else is a parse error).
  std::string version;
  std::vector<std::pair<std::string, std::string>> headers;
  /// Resolved keep-alive decision: HTTP/1.1 default yes, HTTP/1.0 default
  /// no, Connection header overrides either way.
  bool keep_alive = true;

  /// First header with this (lower-case) name, or nullptr.
  const std::string* FindHeader(std::string_view name_lower) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra response headers (e.g. {"Allow", "GET"} on a 405).
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Standard reason phrase for the handful of statuses the admin plane
/// emits; "Unknown" otherwise.
std::string_view HttpReasonPhrase(int status);

/// Serializes status line + Content-Type + Content-Length + Connection
/// (+ extra headers) + body. `keep_alive` controls the Connection header.
std::string EncodeHttpResponse(const HttpResponse& response, bool keep_alive);

/// Per-socket HTTP state machine: Ingest() bytes the reactor read, take
/// parsed requests out, queue encoded response bytes for the reactor to
/// drain. Mirrors net::Connection's contract: it owns no descriptor, never
/// blocks, and a protocol violation flips corrupt() — the server answers
/// 400 and closes after the flush.
///
/// Scope limits (this is an admin plane, not a web server): request bodies
/// are a parse error (Content-Length/Transfer-Encoding present), the head
/// (request line + headers) is capped at max_head_bytes, and pipelined
/// requests beyond max_pending_requests pause reads until handled.
///
/// Thread-safety: none. One HttpConnection belongs to one reactor thread.
class HttpConnection {
 public:
  struct Options {
    /// Request line + headers cap; a head that exceeds it is fatal.
    size_t max_head_bytes = 16u << 10;
    /// Parsed-but-untaken requests before wants_read() turns off.
    size_t max_pending_requests = 64;
    /// Queued response bytes before wants_read() turns off.
    size_t write_high_water = 1u << 20;
  };

  HttpConnection() : HttpConnection(Options{}) {}
  explicit HttpConnection(Options options);

  // --- read side -------------------------------------------------------

  void Ingest(std::string_view data);
  /// Peer closed its write half: mid-head it is a parse error, between
  /// requests a clean end of stream.
  void OnPeerClosed();

  bool corrupt() const { return !error_.ok(); }
  const Status& error() const { return error_; }
  bool peer_closed() const { return peer_closed_; }

  size_t pending_requests() const { return pending_.size(); }
  /// Moves the oldest parsed request into *out; false when none is ready.
  bool TakeRequest(HttpRequest* out);

  bool wants_read() const;

  // --- write side (same drain contract as net::Connection) -------------

  void QueueWrite(std::string bytes);
  size_t write_queued() const { return write_queued_; }
  bool wants_write() const { return write_queued_ > 0; }
  std::string_view write_head() const;
  void ConsumeWrite(size_t n);

  /// A response with Connection: close was queued (or a 400 after
  /// corruption): the server closes once the write queue drains.
  void MarkClose() { close_requested_ = true; }
  bool close_requested() const { return close_requested_; }

 private:
  /// Parses complete heads out of buffer_ into pending_.
  void Advance();
  /// Parses one head (excluding the blank line); sets error_ on failure.
  bool ParseHead(std::string_view head);

  Options options_;
  Status error_;
  bool peer_closed_ = false;
  bool close_requested_ = false;

  std::string buffer_;
  size_t scanned_ = 0;  // prefix of buffer_ known to hold no blank line

  std::deque<HttpRequest> pending_;

  std::deque<std::string> write_queue_;
  size_t write_offset_ = 0;
  size_t write_queued_ = 0;
};

}  // namespace hypermine::net

#endif  // HYPERMINE_NET_HTTP_H_
