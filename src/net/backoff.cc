#include "net/backoff.h"

#include "util/rng.h"

namespace hypermine::net {

int BackoffDelayMs(const BackoffPolicy& policy, int attempt, Rng* rng) {
  if (policy.base_ms <= 0) return 0;
  const int max_ms = policy.max_ms < policy.base_ms ? policy.base_ms
                                                    : policy.max_ms;
  // Shift without overflow: once the doubling passes max_ms, stop doubling.
  int64_t delay = policy.base_ms;
  for (int i = 0; i < attempt && delay < max_ms; ++i) delay *= 2;
  if (delay > max_ms) delay = max_ms;
  if (policy.jitter && rng != nullptr && delay > 1) {
    // Uniform in [delay/2, delay].
    const int64_t half = delay / 2;
    delay = half + static_cast<int64_t>(
                       rng->NextBounded(static_cast<uint64_t>(delay - half + 1)));
  }
  return static_cast<int>(delay);
}

}  // namespace hypermine::net
