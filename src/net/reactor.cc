#include "net/reactor.h"

#include <utility>

namespace hypermine::net {

Reactor::Reactor(size_t reactor_index, EventLoop reactor_loop)
    : index(reactor_index),
      loop(std::move(reactor_loop)),
      read_scratch(64u << 10) {}

void Reactor::PushCompletion(BatchCompletion done) {
  MutexLock lock(completion_mutex);
  completions.push_back(std::move(done));
}

std::vector<BatchCompletion> Reactor::TakeCompletions() {
  std::vector<BatchCompletion> done;
  MutexLock lock(completion_mutex);
  done.swap(completions);
  return done;
}

void Reactor::BeginBatch() {
  MutexLock lock(completion_mutex);
  ++outstanding_batches;
}

void Reactor::FinishBatch() {
  // Decrement and notify under the lock: once Stop() observes zero it may
  // tear the reactor down, so its predicate wait must not return (and free
  // the cv) until this worker has released the mutex — after which the
  // worker touches no reactor member again.
  MutexLock lock(completion_mutex);
  --outstanding_batches;
  outstanding_cv.NotifyAll();
}

std::vector<BatchCompletion> Reactor::WaitIdleAndCollect() {
  std::vector<BatchCompletion> leftovers;
  MutexLock lock(completion_mutex);
  outstanding_cv.Wait(completion_mutex,
                      [this]() HM_REQUIRES(completion_mutex) {
                        return outstanding_batches == 0;
                      });
  leftovers.swap(completions);
  return leftovers;
}

void Reactor::PushHandoff(Socket socket) {
  {
    MutexLock lock(inbox_mutex);
    inbox.push_back(std::move(socket));
  }
  inbox_nonempty.store(true, std::memory_order_release);
  loop.Wakeup();
}

std::vector<Socket> Reactor::TakeHandoffs() {
  if (!inbox_nonempty.exchange(false, std::memory_order_acq_rel)) return {};
  std::vector<Socket> adopted;
  MutexLock lock(inbox_mutex);
  adopted.swap(inbox);
  return adopted;
}

ReactorStats Reactor::snapshot() const {
  ReactorStats s;
  s.index = index;
  s.connections_accepted = accepted.load(std::memory_order_relaxed);
  s.connections_rejected = rejected.load(std::memory_order_relaxed);
  s.connections_reaped = reaped.load(std::memory_order_relaxed);
  s.connections_stalled = stalled.load(std::memory_order_relaxed);
  s.batches = batches_applied.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written.load(std::memory_order_relaxed);
  s.open_connections = open.load(std::memory_order_relaxed);
  {
    MutexLock lock(completion_mutex);
    s.outstanding_batches = outstanding_batches;
  }
  return s;
}

}  // namespace hypermine::net
