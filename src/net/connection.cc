#include "net/connection.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine::net {

Connection::Connection(Options options) : options_(options) {}

void Connection::Ingest(std::string_view data) {
  AssertOnReactor();
  if (corrupt() || peer_closed_) return;  // post-violation bytes are noise
  buffer_.append(data.data(), data.size());
  Advance();
}

void Connection::OnPeerClosed() {
  AssertOnReactor();
  if (peer_closed_ || corrupt()) return;
  peer_closed_ = true;
  // Unparsed buffered bytes or a half-received frame at EOF mean the peer
  // died mid-frame — the same kCorrupted the blocking server reported
  // from ReadFull.
  if (mid_frame()) {
    error_ = Status::Corrupted("connection closed mid-frame");
  }
}

void Connection::Advance() {
  const auto now = std::chrono::steady_clock::now();
  for (;;) {
    const size_t available = buffer_.size() - buffer_offset_;
    if (state_ == ReadState::kHeader) {
      if (available < kFrameHeaderBytes) break;
      Status decoded = DecodeFrameHeader(
          std::string_view(buffer_.data() + buffer_offset_,
                           kFrameHeaderBytes),
          &header_);
      if (!decoded.ok()) {
        error_ = std::move(decoded);
        break;
      }
      buffer_offset_ += kFrameHeaderBytes;
      if (header_.body_len > options_.max_frame_bytes) {
        // Well-framed but over the server's limit: answer it rejected (in
        // arrival order — parsing of later frames waits for the skip) and
        // discard the body as it streams in, never materializing it.
        PendingFrame frame;
        frame.header = header_;
        frame.pre = Status::InvalidArgument(
            StrFormat("frame body of %u bytes exceeds the limit (%u)",
                      header_.body_len, options_.max_frame_bytes));
        frame.arrival = now;
        pending_.push_back(std::move(frame));
        ++frames_parsed_;
        skip_left_ = header_.body_len;
        state_ = skip_left_ > 0 ? ReadState::kSkipBody : ReadState::kHeader;
        continue;
      }
      state_ = ReadState::kBody;
      continue;
    }
    if (state_ == ReadState::kSkipBody) {
      const size_t drop = std::min<size_t>(available, skip_left_);
      buffer_offset_ += drop;
      skip_left_ -= static_cast<uint32_t>(drop);
      if (skip_left_ > 0) break;
      state_ = ReadState::kHeader;
      continue;
    }
    // kBody.
    if (available < header_.body_len) break;
    PendingFrame frame;
    frame.header = header_;
    frame.body.assign(buffer_.data() + buffer_offset_, header_.body_len);
    buffer_offset_ += header_.body_len;
    frame.arrival = now;
    pending_.push_back(std::move(frame));
    ++frames_parsed_;
    state_ = ReadState::kHeader;
  }
  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not grow its buffer without bound.
  if (buffer_offset_ > 4096 && buffer_offset_ * 2 >= buffer_.size()) {
    buffer_.erase(0, buffer_offset_);
    buffer_offset_ = 0;
  }
}

std::vector<PendingFrame> Connection::TakeBatch(size_t max_batch) {
  AssertOnReactor();
  const size_t n = std::min(max_batch, pending_.size());
  std::vector<PendingFrame> batch;
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  return batch;
}

bool Connection::wants_read() const {
  return !corrupt() && !peer_closed_ &&
         (options_.max_pending_frames == 0 ||
          pending_.size() < options_.max_pending_frames) &&
         (options_.write_high_water == 0 ||
          write_queued_ < options_.write_high_water);
}

void Connection::QueueWrite(std::string bytes) {
  AssertOnReactor();
  if (bytes.empty()) return;
  write_queued_ += bytes.size();
  write_queue_.push_back(std::move(bytes));
}

size_t Connection::write_queued() const { return write_queued_; }

std::string_view Connection::write_head() const {
  if (write_queue_.empty()) return {};
  const std::string& head = write_queue_.front();
  return std::string_view(head.data() + write_offset_,
                          head.size() - write_offset_);
}

void Connection::ConsumeWrite(size_t n) {
  AssertOnReactor();
  HM_CHECK_LE(n, write_head().size());
  write_offset_ += n;
  write_queued_ -= n;
  if (!write_queue_.empty() &&
      write_offset_ == write_queue_.front().size()) {
    write_queue_.pop_front();
    write_offset_ = 0;
  }
}

}  // namespace hypermine::net
