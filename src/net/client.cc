#include "net/client.h"

#include <utility>

#include "util/string_util.h"

namespace hypermine::net {

StatusOr<Client> Client::Connect(const std::string& host, uint16_t port,
                                 int retry_ms) {
  HM_ASSIGN_OR_RETURN(Socket socket, Socket::Connect(host, port, retry_ms));
  return Client(std::move(socket));
}

StatusOr<WireResponse> Client::ReadResponse(uint64_t want_id) {
  FrameHeader header;
  std::string body;
  Status read = ReadFrame(&socket_, &header, &body);
  if (read.code() == StatusCode::kNotFound) {
    // Between-frames close while a response is owed = the server dropped
    // the query; report it as such, not as a lookup miss.
    return Status::Corrupted("server closed the connection mid-exchange");
  }
  HM_RETURN_IF_ERROR(read);
  if (header.type != static_cast<uint16_t>(FrameType::kResponse)) {
    return Status::Corrupted(StrFormat(
        "unexpected frame type %u (want RESPONSE)", unsigned{header.type}));
  }
  if (header.request_id != want_id) {
    return Status::Corrupted(StrFormat(
        "misrouted response: id %llu answers a request we did not send "
        "(want %llu)",
        static_cast<unsigned long long>(header.request_id),
        static_cast<unsigned long long>(want_id)));
  }
  WireResponse response;
  HM_RETURN_IF_ERROR(DecodeResponseBody(body, &response));
  return response;
}

StatusOr<WireResponse> Client::Query(const api::QueryRequest& request) {
  const uint64_t id = next_id_++;
  std::string frame;
  HM_RETURN_IF_ERROR(EncodeQueryFrame(id, request, &frame));
  HM_RETURN_IF_ERROR(socket_.WriteAll(frame.data(), frame.size()));
  return ReadResponse(id);
}

StatusOr<std::vector<WireResponse>> Client::QueryMany(
    const std::vector<api::QueryRequest>& requests) {
  // Windowed pipelining, not send-all-then-read-all: with everything
  // written up front, a large batch deadlocks once both directions' TCP
  // buffers fill (the server stops reading while it writes responses we
  // are not yet consuming). Capping the frames in flight keeps the
  // response backlog smaller than any sane socket buffer while still
  // letting the server coalesce full engine batches.
  // Encode everything before sending anything: an encode failure halfway
  // through a pipeline would otherwise leave already-sent requests with
  // unread responses on the socket, poisoning the connection for the
  // next call (its ReadResponse would see stale ids as "misrouted").
  const size_t n = requests.size();
  const uint64_t first_id = next_id_;
  std::vector<std::string> frames(n);
  for (size_t i = 0; i < n; ++i) {
    HM_RETURN_IF_ERROR(
        EncodeQueryFrame(first_id + i, requests[i], &frames[i]));
  }
  next_id_ += n;

  std::vector<WireResponse> responses;
  responses.reserve(n);
  size_t sent = 0;
  std::string wire;
  while (responses.size() < n) {
    if (sent < n && sent - responses.size() < kPipelineWindow) {
      wire.clear();
      while (sent < n && sent - responses.size() < kPipelineWindow) {
        wire += frames[sent];
        ++sent;
      }
      HM_RETURN_IF_ERROR(socket_.WriteAll(wire.data(), wire.size()));
    }
    HM_ASSIGN_OR_RETURN(WireResponse response,
                        ReadResponse(first_id + responses.size()));
    responses.push_back(std::move(response));
  }
  return responses;
}

}  // namespace hypermine::net
