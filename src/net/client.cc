#include "net/client.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/string_util.h"

namespace hypermine::net {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point DeadlineFor(const CallOptions& options) {
  if (options.deadline_ms <= 0) return Clock::time_point::max();
  return Clock::now() + std::chrono::milliseconds(options.deadline_ms);
}

int RemainingMs(Clock::time_point deadline) {
  if (deadline == Clock::time_point::max()) return 0;  // "no cap" sentinel
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return static_cast<int>(left.count());
}

/// Transport trouble poisons the connection; in-band response codes and
/// the caller's own deadline do not.
bool IsTransportError(const Status& status) {
  return !status.ok() && status.code() != StatusCode::kDeadlineExceeded;
}

}  // namespace

StatusOr<Client> Client::Connect(const std::string& host, uint16_t port,
                                 int retry_ms) {
  HM_ASSIGN_OR_RETURN(Socket socket, Socket::Connect(host, port, retry_ms));
  return Client(std::move(socket), host, port);
}

Status Client::ApplyDeadline(Clock::time_point deadline) {
  if (deadline == Clock::time_point::max()) {
    // Clear any cap a previous deadlined call left on this socket.
    HM_RETURN_IF_ERROR(socket_.SetReadTimeoutMs(0));
    return socket_.SetWriteTimeoutMs(0);
  }
  const int remaining = RemainingMs(deadline);
  if (remaining <= 0) {
    return Status::DeadlineExceeded("call deadline expired");
  }
  HM_RETURN_IF_ERROR(socket_.SetReadTimeoutMs(remaining));
  return socket_.SetWriteTimeoutMs(remaining);
}

Status Client::PrepareAttempt(int attempt, const CallOptions& options,
                              Clock::time_point deadline) {
  if (attempt > 0) {
    ++stats_.retries;
    auto wait = std::chrono::milliseconds(
        BackoffDelayMs(options.backoff, attempt - 1,
                       options.backoff.jitter ? &rng_ : nullptr));
    if (deadline != Clock::time_point::max()) {
      const auto now = Clock::now();
      if (now + wait > deadline) {
        // Sleeping past the deadline cannot help; give the attempt
        // whatever sliver remains instead of oversleeping.
        wait = std::chrono::duration_cast<std::chrono::milliseconds>(
            std::max(Clock::duration::zero(), deadline - now));
      }
    }
    if (wait.count() > 0) std::this_thread::sleep_for(wait);
  }
  if (deadline != Clock::time_point::max() && Clock::now() >= deadline) {
    return Status::DeadlineExceeded("call deadline expired");
  }
  if (!socket_.valid()) {
    int connect_budget = 0;
    if (deadline != Clock::time_point::max()) {
      connect_budget = std::max(0, RemainingMs(deadline));
    }
    auto reconnected = Socket::Connect(host_, port_, connect_budget);
    if (!reconnected.ok()) return reconnected.status();
    socket_ = std::move(reconnected).value();
    ++stats_.reconnects;
  }
  return ApplyDeadline(deadline);
}

StatusOr<WireResponse> Client::ReadResponse(uint64_t want_id) {
  FrameHeader header;
  std::string body;
  Status read = ReadFrame(&socket_, &header, &body);
  if (read.code() == StatusCode::kNotFound) {
    // Between-frames close while a response is owed = the server dropped
    // the query; report it as such, not as a lookup miss.
    return Status::Corrupted("server closed the connection mid-exchange");
  }
  HM_RETURN_IF_ERROR(read);
  if (header.type != static_cast<uint16_t>(FrameType::kResponse)) {
    return Status::Corrupted(StrFormat(
        "unexpected frame type %u (want RESPONSE)", unsigned{header.type}));
  }
  if (header.request_id != want_id) {
    return Status::Corrupted(StrFormat(
        "misrouted response: id %llu answers a request we did not send "
        "(want %llu)",
        static_cast<unsigned long long>(header.request_id),
        static_cast<unsigned long long>(want_id)));
  }
  WireResponse response;
  HM_RETURN_IF_ERROR(DecodeResponseBody(body, &response));
  return response;
}

StatusOr<WireResponse> Client::Query(const api::QueryRequest& request,
                                     const CallOptions& options) {
  const auto deadline = DeadlineFor(options);
  Status last = Status::Internal("query never attempted");
  for (int attempt = 0; attempt <= options.max_retries; ++attempt) {
    Status ready = PrepareAttempt(attempt, options, deadline);
    if (ready.code() == StatusCode::kDeadlineExceeded) {
      ++stats_.deadline_exceeded;
      return ready;
    }
    if (!ready.ok()) {
      last = std::move(ready);  // reconnect failed; back off and retry
      continue;
    }

    const uint64_t id = next_id_++;
    std::string frame;
    HM_RETURN_IF_ERROR(EncodeQueryFrame(id, request, &frame));
    Status sent = socket_.WriteAll(frame.data(), frame.size());
    StatusOr<WireResponse> got =
        sent.ok() ? ReadResponse(id) : StatusOr<WireResponse>(sent);
    if (got.ok()) {
      if (got->code == StatusCode::kUnavailable) {
        // The server shed or is draining: a clean answer on a healthy
        // connection. Retry it like a transport blip, without poisoning.
        ++stats_.unavailable;
        last = got->ToStatus();
        if (attempt < options.max_retries) continue;
      }
      return got;
    }
    last = got.status();
    if (last.code() == StatusCode::kDeadlineExceeded) {
      // The socket timeout fired: the budget is spent, and a response may
      // still be in flight — poison the connection so a late frame can
      // never be misread as answering a future request.
      socket_.Close();
      ++stats_.deadline_exceeded;
      return last;
    }
    if (IsTransportError(last)) {
      // Unknown connection state mid-exchange: drop it; the next attempt
      // reconnects.
      socket_.Close();
    }
  }
  return last;
}

Status Client::QueryManyAttempt(
    const std::vector<api::QueryRequest>& requests, size_t responses_done,
    std::vector<WireResponse>* out) {
  // Windowed pipelining, not send-all-then-read-all: with everything
  // written up front, a large batch deadlocks once both directions' TCP
  // buffers fill (the server stops reading while it writes responses we
  // are not yet consuming). Capping the frames in flight keeps the
  // response backlog smaller than any sane socket buffer while still
  // letting the server coalesce full engine batches.
  // Encode everything before sending anything: an encode failure halfway
  // through a pipeline would otherwise leave already-sent requests with
  // unread responses on the socket, poisoning the connection for the
  // next call (its ReadResponse would see stale ids as "misrouted").
  const size_t n = requests.size() - responses_done;
  const uint64_t first_id = next_id_;
  std::vector<std::string> frames(n);
  for (size_t i = 0; i < n; ++i) {
    HM_RETURN_IF_ERROR(EncodeQueryFrame(first_id + i,
                                        requests[responses_done + i],
                                        &frames[i]));
  }
  next_id_ += n;

  size_t answered = 0;
  size_t sent = 0;
  std::string wire;
  while (answered < n) {
    if (sent < n && sent - answered < kPipelineWindow) {
      wire.clear();
      while (sent < n && sent - answered < kPipelineWindow) {
        wire += frames[sent];
        ++sent;
      }
      HM_RETURN_IF_ERROR(socket_.WriteAll(wire.data(), wire.size()));
    }
    HM_ASSIGN_OR_RETURN(WireResponse response,
                        ReadResponse(first_id + answered));
    out->push_back(std::move(response));
    ++answered;
  }
  return Status::OK();
}

StatusOr<std::vector<WireResponse>> Client::QueryMany(
    const std::vector<api::QueryRequest>& requests,
    const CallOptions& options) {
  const auto deadline = DeadlineFor(options);
  std::vector<WireResponse> responses;
  responses.reserve(requests.size());
  Status last = Status::Internal("query never attempted");
  for (int attempt = 0; attempt <= options.max_retries; ++attempt) {
    Status ready = PrepareAttempt(attempt, options, deadline);
    if (ready.code() == StatusCode::kDeadlineExceeded) {
      ++stats_.deadline_exceeded;
      return ready;
    }
    if (!ready.ok()) {
      last = std::move(ready);
      continue;
    }
    last = QueryManyAttempt(requests, responses.size(), &responses);
    if (last.ok()) return responses;
    if (last.code() == StatusCode::kDeadlineExceeded) {
      socket_.Close();
      ++stats_.deadline_exceeded;
      return last;
    }
    // Answered prefix survives; only the tail is re-sent next attempt.
    if (IsTransportError(last)) socket_.Close();
  }
  return last;
}

}  // namespace hypermine::net
