#ifndef HYPERMINE_NET_EVENT_LOOP_H_
#define HYPERMINE_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace hypermine::net {

/// Readiness multiplexer for the reactor thread: registered descriptors,
/// periodic timers, and a cross-thread wakeup, multiplexed through one
/// blocking Wait() call. Backed by epoll where available (Linux) and by
/// poll() everywhere else; the backend is also selectable at construction
/// so the poll path stays unit-tested on Linux rather than rotting as a
/// "portability" branch nobody runs.
///
/// Thread-safety: everything is single-threaded (the reactor owns the
/// loop) EXCEPT Wakeup(), which may be called from any thread to unblock
/// a concurrent Wait().
///
/// That ownership is a *capability* for Clang's thread safety analysis:
/// the loop itself is HM_CAPABILITY("reactor"), reactor-only code paths
/// (Server's connection handlers) are annotated HM_REQUIRES(loop), and the
/// reactor thread establishes the capability by calling
/// AssertOnLoopThread() — which, in debug builds, also verifies at runtime
/// that the caller really is the bound reactor thread and aborts if not.
class HM_CAPABILITY("reactor") EventLoop {
 public:
  /// What Wait() observed for one registered descriptor or timer.
  struct Event {
    /// The tag given at Add/AddTimer time — the loop never interprets it.
    uint64_t tag = 0;
    bool readable = false;
    bool writable = false;
    /// EPOLLHUP/EPOLLERR (or poll equivalents): the descriptor is dead or
    /// half-dead; a read will resolve it to EOF or an errno.
    bool hangup = false;
    /// A periodic timer with this tag fired (possibly multiple intervals
    /// late under load; fires once per Wait regardless).
    bool timer = false;
  };

  enum class Backend { kEpoll, kPoll };

  /// Picks epoll when the platform has it, poll otherwise.
  static StatusOr<EventLoop> Create();
  /// Forces a backend (tests exercise kPoll on Linux). kUnimplemented
  /// when the backend does not exist on this platform.
  static StatusOr<EventLoop> Create(Backend backend);

  EventLoop(EventLoop&& other) noexcept;
  EventLoop& operator=(EventLoop&& other) noexcept;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;
  ~EventLoop();

  Backend backend() const { return backend_; }

  /// Registers `fd` with the given interest set. One registration per fd;
  /// kAlreadyExists when it is already registered.
  Status Add(int fd, uint64_t tag, bool read, bool write);

  /// Changes the interest set (and tag) of a registered fd. No-op cost
  /// when the interest did not change is the caller's business — the loop
  /// always issues the update.
  Status Update(int fd, uint64_t tag, bool read, bool write);

  /// Deregisters `fd`. Must be called BEFORE closing the descriptor on
  /// the poll backend (epoll would forget it on close; poll would spin on
  /// a bad fd).
  Status Remove(int fd);

  /// Registers a periodic timer that fires every `interval_ms`
  /// (starting one interval from now), reported as Event{tag, timer=true}.
  /// A timer tag is an independent namespace from fd tags. Re-adding an
  /// existing tag resets its phase and interval.
  void AddTimer(uint64_t tag, int interval_ms);
  void CancelTimer(uint64_t tag);

  /// Blocks until at least one registered fd is ready, a timer expires,
  /// Wakeup() is called, or `timeout_ms` elapses (-1 = no timeout).
  /// Appends events to `*out` (not cleared) and returns how many were
  /// appended; 0 means the wait timed out or was woken without events.
  StatusOr<size_t> Wait(int timeout_ms, std::vector<Event>* out);

  /// Unblocks a concurrent Wait(). Callable from any thread; sticky
  /// (a wakeup before Wait makes the next Wait return immediately).
  void Wakeup();

  /// Declares this loop owned by the calling thread: from now on, every
  /// non-Wakeup method must run on it (debug builds abort otherwise). The
  /// reactor calls this as its first act.
  void BindToCurrentThread();
  /// Releases the ownership claim (the reactor's last act before exiting,
  /// which is what makes Server::Stop's post-join cleanup legal).
  void UnbindThread();

  /// Establishes the "reactor" capability for the static analysis and, in
  /// debug builds, aborts when called off the bound thread. An unbound
  /// loop passes: single-threaded setup before the reactor starts and
  /// teardown after it exits are both legitimate.
  void AssertOnLoopThread() const HM_ASSERT_CAPABILITY(this) {
#if !defined(NDEBUG)
    AssertOnLoopThreadSlow();
#endif
  }

 private:
  struct Timer {
    std::chrono::steady_clock::time_point deadline;
    std::chrono::milliseconds interval{0};
  };
  struct Registration {
    uint64_t tag = 0;
    bool read = false;
    bool write = false;
  };

  EventLoop() = default;

  /// The out-of-line debug body of AssertOnLoopThread (aborts off-thread).
  void AssertOnLoopThreadSlow() const;

  /// Milliseconds until the nearest timer, clamped into [0, timeout_ms]
  /// (timeout_ms = -1 means only timers bound the wait).
  int EffectiveTimeout(int timeout_ms) const;
  /// Moves expired timers into `out`, re-arming each.
  size_t FireTimers(std::vector<Event>* out);
  void DrainWakeup();
  void CloseAll();

  Backend backend_ = Backend::kPoll;
  int epoll_fd_ = -1;
  /// Wakeup channel: eventfd on Linux (read == write end), a pipe
  /// elsewhere.
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  /// All registrations, keyed by fd — the poll backend builds its pollfd
  /// array from this; the epoll backend uses it to validate Add/Update/
  /// Remove and to carry tags.
  std::unordered_map<int, Registration> fds_;
  std::unordered_map<uint64_t, Timer> timers_;
  /// Thread the loop is bound to; default-constructed id = unbound.
  /// Atomic because AssertOnLoopThread may race Bind/Unbind benignly
  /// (the abort path reads a stable value either way).
  std::atomic<std::thread::id> bound_thread_{};
};

}  // namespace hypermine::net

#endif  // HYPERMINE_NET_EVENT_LOOP_H_
