#include "net/event_loop.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#define HYPERMINE_HAVE_EPOLL 1
#else
#include <fcntl.h>
#define HYPERMINE_HAVE_EPOLL 0
#endif

namespace hypermine::net {
namespace {

Status Errno(const char* what) {
  return Status::IoError(StrFormat("%s: %s", what, std::strerror(errno)));
}

/// Internal tag for the wakeup descriptor; never surfaced as an Event.
constexpr uint64_t kWakeupTag = ~uint64_t{0};

}  // namespace

StatusOr<EventLoop> EventLoop::Create() {
#if HYPERMINE_HAVE_EPOLL
  return Create(Backend::kEpoll);
#else
  return Create(Backend::kPoll);
#endif
}

StatusOr<EventLoop> EventLoop::Create(Backend backend) {
  EventLoop loop;
  loop.backend_ = backend;

#if HYPERMINE_HAVE_EPOLL
  // eventfd: one fd serves as both ends of the wakeup channel and a read
  // drains every pending wakeup at once.
  int efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (efd < 0) return Errno("eventfd");
  loop.wake_read_fd_ = efd;
  loop.wake_write_fd_ = efd;
#else
  if (backend == Backend::kEpoll) {
    return Status::Unimplemented("epoll is not available on this platform");
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return Errno("pipe");
  ::fcntl(pipe_fds[0], F_SETFL, O_NONBLOCK);
  ::fcntl(pipe_fds[1], F_SETFL, O_NONBLOCK);
  loop.wake_read_fd_ = pipe_fds[0];
  loop.wake_write_fd_ = pipe_fds[1];
#endif

#if HYPERMINE_HAVE_EPOLL
  if (backend == Backend::kEpoll) {
    loop.epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (loop.epoll_fd_ < 0) {
      Status status = Errno("epoll_create1");
      loop.CloseAll();
      return status;
    }
    struct epoll_event ev = {};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeupTag;
    if (::epoll_ctl(loop.epoll_fd_, EPOLL_CTL_ADD, loop.wake_read_fd_,
                    &ev) != 0) {
      Status status = Errno("epoll_ctl(wakeup)");
      loop.CloseAll();
      return status;
    }
  }
#endif
  return loop;
}

EventLoop::EventLoop(EventLoop&& other) noexcept
    : backend_(other.backend_),
      epoll_fd_(std::exchange(other.epoll_fd_, -1)),
      wake_read_fd_(std::exchange(other.wake_read_fd_, -1)),
      wake_write_fd_(std::exchange(other.wake_write_fd_, -1)),
      fds_(std::move(other.fds_)),
      timers_(std::move(other.timers_)),
      bound_thread_(other.bound_thread_.exchange(std::thread::id{})) {}

EventLoop& EventLoop::operator=(EventLoop&& other) noexcept {
  if (this != &other) {
    CloseAll();
    backend_ = other.backend_;
    epoll_fd_ = std::exchange(other.epoll_fd_, -1);
    wake_read_fd_ = std::exchange(other.wake_read_fd_, -1);
    wake_write_fd_ = std::exchange(other.wake_write_fd_, -1);
    fds_ = std::move(other.fds_);
    timers_ = std::move(other.timers_);
    bound_thread_.store(other.bound_thread_.exchange(std::thread::id{}));
  }
  return *this;
}

void EventLoop::BindToCurrentThread() {
  bound_thread_.store(std::this_thread::get_id(), std::memory_order_release);
}

void EventLoop::UnbindThread() {
  bound_thread_.store(std::thread::id{}, std::memory_order_release);
}

void EventLoop::AssertOnLoopThreadSlow() const {
  const std::thread::id bound =
      bound_thread_.load(std::memory_order_acquire);
  if (bound != std::thread::id{} && bound != std::this_thread::get_id()) {
    HM_LOG_FATAL << "EventLoop used off its reactor thread (reactor "
                    "affinity violation; see docs/static_analysis.md)";
  }
}

EventLoop::~EventLoop() { CloseAll(); }

void EventLoop::CloseAll() {
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0 && wake_write_fd_ != wake_read_fd_) {
    ::close(wake_write_fd_);
  }
  wake_read_fd_ = -1;
  wake_write_fd_ = -1;
}

Status EventLoop::Add(int fd, uint64_t tag, bool read, bool write) {
  AssertOnLoopThread();
  if (fd < 0) return Status::InvalidArgument("EventLoop::Add: bad fd");
  if (tag == kWakeupTag) {
    return Status::InvalidArgument("EventLoop::Add: reserved tag");
  }
  if (fds_.count(fd) != 0) {
    return Status::AlreadyExists(
        StrFormat("fd %d is already registered", fd));
  }
#if HYPERMINE_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    struct epoll_event ev = {};
    ev.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u);
    ev.data.u64 = tag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      return Errno("epoll_ctl(add)");
    }
  }
#endif
  fds_[fd] = Registration{tag, read, write};
  return Status::OK();
}

Status EventLoop::Update(int fd, uint64_t tag, bool read, bool write) {
  AssertOnLoopThread();
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return Status::NotFound(StrFormat("fd %d is not registered", fd));
  }
#if HYPERMINE_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    struct epoll_event ev = {};
    ev.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u);
    ev.data.u64 = tag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      return Errno("epoll_ctl(mod)");
    }
  }
#endif
  it->second = Registration{tag, read, write};
  return Status::OK();
}

Status EventLoop::Remove(int fd) {
  AssertOnLoopThread();
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return Status::NotFound(StrFormat("fd %d is not registered", fd));
  }
#if HYPERMINE_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    struct epoll_event ev = {};  // ignored by DEL; non-null for old kernels
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev) != 0) {
      return Errno("epoll_ctl(del)");
    }
  }
#endif
  fds_.erase(it);
  return Status::OK();
}

void EventLoop::AddTimer(uint64_t tag, int interval_ms) {
  AssertOnLoopThread();
  const auto interval = std::chrono::milliseconds(std::max(1, interval_ms));
  timers_[tag] =
      Timer{std::chrono::steady_clock::now() + interval, interval};
}

void EventLoop::CancelTimer(uint64_t tag) {
  AssertOnLoopThread();
  timers_.erase(tag);
}

int EventLoop::EffectiveTimeout(int timeout_ms) const {
  if (timers_.empty()) return timeout_ms;
  const auto now = std::chrono::steady_clock::now();
  int64_t nearest = std::numeric_limits<int64_t>::max();
  for (const auto& [tag, timer] : timers_) {
    const int64_t ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(timer.deadline -
                                                              now)
            .count();
    nearest = std::min(nearest, std::max<int64_t>(0, ms));
  }
  // +1 so the wait lands just past the deadline, not a hair before it.
  nearest = std::min<int64_t>(nearest + 1,
                              std::numeric_limits<int>::max());
  if (timeout_ms < 0) return static_cast<int>(nearest);
  return static_cast<int>(std::min<int64_t>(nearest, timeout_ms));
}

size_t EventLoop::FireTimers(std::vector<Event>* out) {
  const auto now = std::chrono::steady_clock::now();
  size_t fired = 0;
  for (auto& [tag, timer] : timers_) {
    if (timer.deadline > now) continue;
    Event event;
    event.tag = tag;
    event.timer = true;
    out->push_back(event);
    ++fired;
    // Re-arm from *now*, not from the old deadline: a loop that stalled
    // for many intervals gets one catch-up fire, not a burst.
    timer.deadline = now + timer.interval;
  }
  return fired;
}

void EventLoop::DrainWakeup() {
  // eventfd needs one 8-byte read; the pipe may hold one byte per missed
  // Wakeup. Loop until EAGAIN either way.
  char buffer[64];
  while (::read(wake_read_fd_, buffer, sizeof(buffer)) > 0) {
  }
}

StatusOr<size_t> EventLoop::Wait(int timeout_ms, std::vector<Event>* out) {
  AssertOnLoopThread();
  const int wait_ms = EffectiveTimeout(timeout_ms);
  size_t appended = 0;

#if HYPERMINE_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    struct epoll_event events[64];
    int n = ::epoll_wait(epoll_fd_, events, 64, wait_ms);
    if (n < 0) {
      if (errno == EINTR) return FireTimers(out);
      return Errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.u64 == kWakeupTag) {
        DrainWakeup();
        continue;
      }
      Event event;
      event.tag = events[i].data.u64;
      event.readable = (events[i].events & EPOLLIN) != 0;
      event.writable = (events[i].events & EPOLLOUT) != 0;
      event.hangup = (events[i].events & (EPOLLHUP | EPOLLERR)) != 0;
      out->push_back(event);
      ++appended;
    }
    return appended + FireTimers(out);
  }
#endif

  std::vector<struct pollfd> pollfds;
  pollfds.reserve(fds_.size() + 1);
  {
    struct pollfd wake = {};
    wake.fd = wake_read_fd_;
    wake.events = POLLIN;
    pollfds.push_back(wake);
  }
  // Iteration order over the map is arbitrary but stable within one Wait:
  // pollfds[i + 1] corresponds to the i-th registration visited below.
  std::vector<uint64_t> tags;
  tags.reserve(fds_.size());
  for (const auto& [fd, reg] : fds_) {
    struct pollfd pfd = {};
    pfd.fd = fd;
    pfd.events = static_cast<short>((reg.read ? POLLIN : 0) |
                                    (reg.write ? POLLOUT : 0));
    pollfds.push_back(pfd);
    tags.push_back(reg.tag);
  }
  int n = ::poll(pollfds.data(), pollfds.size(), wait_ms);
  if (n < 0) {
    if (errno == EINTR) return FireTimers(out);
    return Errno("poll");
  }
  if ((pollfds[0].revents & POLLIN) != 0) DrainWakeup();
  for (size_t i = 1; i < pollfds.size(); ++i) {
    const short revents = pollfds[i].revents;
    if (revents == 0) continue;
    Event event;
    event.tag = tags[i - 1];
    event.readable = (revents & POLLIN) != 0;
    event.writable = (revents & POLLOUT) != 0;
    event.hangup = (revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
    out->push_back(event);
    ++appended;
  }
  return appended + FireTimers(out);
}

void EventLoop::Wakeup() {
  const uint64_t one = 1;
  // A full pipe/eventfd already guarantees the sleeper will wake; EAGAIN
  // is success, and there is nothing useful to do about other errors.
  ssize_t ignored = ::write(wake_write_fd_, &one, sizeof(one));
  (void)ignored;
}

}  // namespace hypermine::net
