#ifndef HYPERMINE_NET_CLIENT_H_
#define HYPERMINE_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/engine.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "util/status.h"

namespace hypermine::net {

/// Blocking client for the framed query protocol (net/protocol.h,
/// docs/protocol.md). One Client owns one TCP connection; request ids are
/// assigned internally and every response is checked to echo the id of
/// the request it answers, so a misrouted response surfaces as kCorrupted
/// instead of a silently wrong answer.
///
/// Queries carry vertex *names* (api::QueryRequest::names); requests with
/// only ids are rejected client-side, because ids are per-model and a
/// server-side hot swap would re-address them.
///
/// Thread-safety: none — one Client per thread, or external locking.
/// Server-side errors (unknown vertex, quota exhaustion) arrive as the
/// WireResponse's code/message with the connection still usable; only
/// transport failures make the methods themselves return non-OK.
class Client {
 public:
  /// Connects to host:port. `retry_ms` > 0 retries refused connections
  /// for that long (scripts racing a server that is still starting).
  static StatusOr<Client> Connect(const std::string& host, uint16_t port,
                                  int retry_ms = 0);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Sends one query and blocks for its response. The returned
  /// WireResponse carries the engine's answer or its error code;
  /// a non-OK StatusOr means the connection itself failed.
  StatusOr<WireResponse> Query(const api::QueryRequest& request);

  /// Pipelines the requests with at most kPipelineWindow frames in
  /// flight (responses arrive in request order — a server guarantee), so
  /// arbitrarily large batches cannot deadlock on full TCP buffers.
  /// Response i answers requests[i]. The whole call fails on any
  /// transport error; per-query failures are per-WireResponse codes,
  /// same as Query.
  StatusOr<std::vector<WireResponse>> QueryMany(
      const std::vector<api::QueryRequest>& requests);

  /// Unacknowledged frames QueryMany keeps in flight. Sized so a full
  /// window of worst-case responses stays far below loopback socket
  /// buffers, while still feeding the server whole coalesced batches.
  static constexpr size_t kPipelineWindow = 128;

  /// Closes the connection; further calls fail.
  void Close() { socket_.Close(); }

 private:
  explicit Client(Socket socket) : socket_(std::move(socket)) {}

  /// Reads one response frame and checks it echoes `want_id`.
  StatusOr<WireResponse> ReadResponse(uint64_t want_id);

  Socket socket_;
  uint64_t next_id_ = 1;
};

}  // namespace hypermine::net

#endif  // HYPERMINE_NET_CLIENT_H_
