#ifndef HYPERMINE_NET_CLIENT_H_
#define HYPERMINE_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "api/engine.h"
#include "net/backoff.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "util/rng.h"
#include "util/status.h"

namespace hypermine::net {

/// Per-call failure policy. Retrying is always safe here because the
/// protocol only carries read-only queries — re-sending one cannot
/// double-apply anything.
struct CallOptions {
  /// Whole-call budget in ms, covering every attempt, backoff sleep, and
  /// reconnect. 0 = wait forever (the pre-PR-7 behavior).
  int deadline_ms = 0;
  /// Re-attempts after the first try fails with a transport error or an
  /// in-band kUnavailable (shed/draining server). 0 = fail fast.
  int max_retries = 0;
  /// Wait schedule between attempts. Jittered by default so a fleet of
  /// clients retrying the same blip does not re-synchronize.
  BackoffPolicy backoff{/*base_ms=*/10, /*max_ms=*/500, /*jitter=*/true};
};

/// Client-side failure accounting, cumulative over the Client's life.
/// Transport-level retries are invisible to the server, so these live
/// here rather than in the server's metrics registry.
struct ClientStats {
  /// Attempts beyond the first (any cause).
  uint64_t retries = 0;
  /// Sockets re-established after a poisoned connection.
  uint64_t reconnects = 0;
  /// Calls that gave up because deadline_ms expired.
  uint64_t deadline_exceeded = 0;
  /// In-band kUnavailable responses observed (shed or draining server),
  /// whether or not a retry followed.
  uint64_t unavailable = 0;
};

/// Blocking client for the framed query protocol (net/protocol.h,
/// docs/protocol.md). One Client owns one TCP connection; request ids are
/// assigned internally and every response is checked to echo the id of
/// the request it answers, so a misrouted response surfaces as kCorrupted
/// instead of a silently wrong answer.
///
/// Queries carry vertex *names* (api::QueryRequest::names); requests with
/// only ids are rejected client-side, because ids are per-model and a
/// server-side hot swap would re-address them.
///
/// Thread-safety: none — one Client per thread, or external locking.
/// Server-side errors (unknown vertex, quota exhaustion) arrive as the
/// WireResponse's code/message with the connection still usable; only
/// transport failures make the methods themselves return non-OK.
class Client {
 public:
  /// Connects to host:port. `retry_ms` > 0 retries refused connections
  /// for that long (scripts racing a server that is still starting).
  static StatusOr<Client> Connect(const std::string& host, uint16_t port,
                                  int retry_ms = 0);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Sends one query and blocks for its response. The returned
  /// WireResponse carries the engine's answer or its error code;
  /// a non-OK StatusOr means the connection itself failed (or, with a
  /// deadline set, kDeadlineExceeded when the budget ran out).
  ///
  /// With options.max_retries > 0 a transport failure poisons the
  /// connection (its state is unknown mid-exchange), the socket is
  /// closed, and the next attempt reconnects; an in-band kUnavailable is
  /// retried on the same connection. Waits follow options.backoff.
  StatusOr<WireResponse> Query(const api::QueryRequest& request,
                               const CallOptions& options);
  StatusOr<WireResponse> Query(const api::QueryRequest& request) {
    return Query(request, call_options_);
  }

  /// Pipelines the requests with at most kPipelineWindow frames in
  /// flight (responses arrive in request order — a server guarantee), so
  /// arbitrarily large batches cannot deadlock on full TCP buffers.
  /// Response i answers requests[i]. Per-query failures are
  /// per-WireResponse codes, same as Query.
  ///
  /// Retries resume where the stream broke: answered prefixes are kept,
  /// only the unanswered tail is re-sent (with fresh request ids, over a
  /// fresh connection). kUnavailable responses are NOT retried here —
  /// they are real answers in an ordered stream; callers that want
  /// per-query retry use Query.
  StatusOr<std::vector<WireResponse>> QueryMany(
      const std::vector<api::QueryRequest>& requests,
      const CallOptions& options);
  StatusOr<std::vector<WireResponse>> QueryMany(
      const std::vector<api::QueryRequest>& requests) {
    return QueryMany(requests, call_options_);
  }

  /// Default CallOptions used by the two-argument overloads.
  void set_call_options(const CallOptions& options) {
    call_options_ = options;
  }
  const CallOptions& call_options() const { return call_options_; }

  /// Cumulative retry/reconnect/deadline accounting.
  const ClientStats& stats() const { return stats_; }

  /// Unacknowledged frames QueryMany keeps in flight. Sized so a full
  /// window of worst-case responses stays far below loopback socket
  /// buffers, while still feeding the server whole coalesced batches.
  static constexpr size_t kPipelineWindow = 128;

  /// Closes the connection; further calls fail.
  void Close() { socket_.Close(); }

 private:
  Client(Socket socket, std::string host, uint16_t port)
      : socket_(std::move(socket)),
        host_(std::move(host)),
        port_(port),
        rng_(reinterpret_cast<uintptr_t>(this)) {}

  /// Reads one response frame and checks it echoes `want_id`.
  StatusOr<WireResponse> ReadResponse(uint64_t want_id);

  /// One shot of QueryMany against the current connection, appending
  /// responses for requests[*responses_done..] into `out`.
  Status QueryManyAttempt(const std::vector<api::QueryRequest>& requests,
                          size_t responses_done,
                          std::vector<WireResponse>* out);

  /// Sleeps the backoff for `attempt` (clamped to `deadline`) and makes
  /// sure a live connection exists, reconnecting a poisoned one. Returns
  /// kDeadlineExceeded when the budget is already spent.
  Status PrepareAttempt(int attempt, const CallOptions& options,
                        std::chrono::steady_clock::time_point deadline);

  /// Applies the remaining budget to the socket as read/write timeouts.
  /// kDeadlineExceeded when nothing remains.
  Status ApplyDeadline(std::chrono::steady_clock::time_point deadline);

  Socket socket_;
  std::string host_;
  uint16_t port_ = 0;
  uint64_t next_id_ = 1;
  CallOptions call_options_;
  ClientStats stats_;
  Rng rng_;  // jitter only; schedule correctness never depends on it
};

}  // namespace hypermine::net

#endif  // HYPERMINE_NET_CLIENT_H_
