#ifndef HYPERMINE_NET_BACKOFF_H_
#define HYPERMINE_NET_BACKOFF_H_

#include <cstdint>

namespace hypermine {
class Rng;
}  // namespace hypermine

namespace hypermine::net {

/// Capped exponential backoff: attempt 0 waits base_ms, each further attempt
/// doubles, clamped to max_ms. With jitter enabled the wait is drawn
/// uniformly from [delay/2, delay], which keeps retry storms from
/// re-synchronizing while preserving the cap.
struct BackoffPolicy {
  int base_ms = 10;
  int max_ms = 1000;
  /// Multiply-by-half jitter; off for deterministic schedules (tests,
  /// Connect's refused-connection loop).
  bool jitter = false;
};

/// Delay before retry number `attempt` (0-based). Pure for jitter=false;
/// with jitter=true, `rng` must be non-null and supplies the draw.
int BackoffDelayMs(const BackoffPolicy& policy, int attempt,
                   hypermine::Rng* rng = nullptr);

}  // namespace hypermine::net

#endif  // HYPERMINE_NET_BACKOFF_H_
