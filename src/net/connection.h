#ifndef HYPERMINE_NET_CONNECTION_H_
#define HYPERMINE_NET_CONNECTION_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "net/event_loop.h"
#include "net/protocol.h"
#include "util/status.h"

namespace hypermine::net {

/// One frame extracted from a connection's byte stream, waiting for a
/// batch slot. `pre` non-OK means admission already rejected it at the
/// framing layer (an oversized body, which was skipped, never
/// materialized) — the engine never sees it, but it still gets an in-band
/// error response in arrival order.
struct PendingFrame {
  FrameHeader header;
  std::string body;
  Status pre;
  /// When the frame finished arriving (stamped by Advance). The server's
  /// load shedder compares this against its queue-wait budget at batch
  /// build time, so each query's own wait — not its batch's — decides.
  std::chrono::steady_clock::time_point arrival;
};

/// The per-socket protocol state machine of the event-loop server: bytes
/// in, decoded frames and queued response bytes out. It owns NO
/// descriptor and never blocks — the reactor (or a test) feeds it
/// whatever the socket produced and drains whatever it wants written, so
/// every partial-read / short-write / mid-frame-close path is exercisable
/// entirely in memory (tests/net/connection_test.cc does exactly that).
///
/// Framing behavior matches docs/protocol.md §1: a header announcing a
/// body above the protocol cap, bad magic, or nonzero reserved bits is
/// connection-fatal (corrupt()); a well-framed body above the server's
/// configured `max_frame_bytes` is skipped byte-for-byte and surfaces as
/// a PendingFrame whose `pre` is kInvalidArgument, keeping the stream
/// framed and the connection usable.
///
/// Thread-safety: none. One Connection belongs to one reactor thread;
/// after BindLoop, debug builds verify that claim on every mutating call
/// (release builds pay nothing).
class Connection {
 public:
  struct Options {
    /// Per-frame admission cap (the server's max_query_bytes). Bodies
    /// above it but within the protocol cap are skipped, not fatal.
    uint32_t max_frame_bytes = kMaxBodyBytes;
    /// Decoded-but-unclaimed frames before wants_read() turns off —
    /// bounds memory when a client pipelines faster than the engine
    /// drains. 0 = unbounded.
    size_t max_pending_frames = 4096;
    /// Queued response bytes before wants_read() turns off: a client
    /// that stops reading its responses stops being read from, so the
    /// write queue (not the kernel) is the only buffer that grows.
    /// 0 = unbounded (matching the server options' 0-disables idiom).
    size_t write_high_water = 1u << 20;
  };

  Connection() : Connection(Options{}) {}
  explicit Connection(Options options);

  /// Ties this connection to its reactor's loop. From then on every
  /// mutating method asserts (debug builds) that it runs on the loop's
  /// bound thread; unbound connections (unit tests driving the state
  /// machine directly) skip the check. `loop` is not owned and must
  /// outlive the connection.
  void BindLoop(const EventLoop* loop) { loop_ = loop; }

  // --- read side -------------------------------------------------------

  /// Consumes bytes the reactor read off the socket, advancing the
  /// framing state machine. Complete frames accumulate for TakeBatch();
  /// a framing violation flips corrupt() (bytes after it are ignored).
  void Ingest(std::string_view data);

  /// The peer closed its write side. A close mid-frame is a framing
  /// violation (kCorrupted, matching the blocking server's "connection
  /// closed mid-read"); between frames it is a clean end of stream.
  void OnPeerClosed();

  /// The stream is beyond recovery; `error()` says why. Already-decoded
  /// frames are still served (TakeBatch keeps returning them) — the
  /// reactor drops the connection once they are answered and flushed.
  bool corrupt() const { return !error_.ok(); }
  const Status& error() const { return error_; }
  /// True after OnPeerClosed() with clean framing.
  bool peer_closed() const { return peer_closed_; }

  /// True while a frame is partially received (header split across reads,
  /// or a body/skip in progress). The server's stall timer uses this: a
  /// connection parked mid-frame past the stall budget is a slow-loris
  /// peer, closed even though it is not idle by the reap timer's measure.
  bool mid_frame() const {
    return state_ != ReadState::kHeader || buffer_offset_ != buffer_.size();
  }

  /// Frames decoded and not yet taken.
  size_t pending_frames() const { return pending_.size(); }

  /// Lifetime count of frames fully parsed (pre-rejected ones included).
  /// The stall timer keys on this: a connection whose counter moves is
  /// making progress even if it is always mid-way through the NEXT frame.
  uint64_t frames_parsed() const { return frames_parsed_; }

  /// Moves up to `max_batch` frames out, in arrival order.
  std::vector<PendingFrame> TakeBatch(size_t max_batch);

  /// Whether the reactor should keep read interest: the stream is intact
  /// and neither the pending-frame bound nor the write high-water mark
  /// says "stop accepting work".
  bool wants_read() const;

  // --- write side ------------------------------------------------------

  /// Appends response bytes to the write queue.
  void QueueWrite(std::string bytes);

  /// Bytes not yet consumed by the socket.
  size_t write_queued() const;
  bool wants_write() const { return write_queued() > 0; }

  /// The longest contiguous span currently writable (the head chunk of
  /// the queue). Empty iff !wants_write().
  std::string_view write_head() const;

  /// Marks `n` bytes of write_head() as written (short writes pass the
  /// kernel's count straight through). n must not exceed write_head().
  void ConsumeWrite(size_t n);

 private:
  enum class ReadState { kHeader, kBody, kSkipBody };

  /// Parses as much of buffer_ as possible into pending_.
  void Advance();

  /// Debug-only reactor-affinity check; no-op when unbound.
  void AssertOnReactor() const {
    if (loop_ != nullptr) loop_->AssertOnLoopThread();
  }

  const EventLoop* loop_ = nullptr;
  Options options_;
  Status error_;
  bool peer_closed_ = false;

  ReadState state_ = ReadState::kHeader;
  FrameHeader header_;      // valid in kBody / kSkipBody
  uint32_t skip_left_ = 0;  // kSkipBody: body bytes still to discard
  std::string buffer_;      // unparsed input bytes
  size_t buffer_offset_ = 0;

  std::deque<PendingFrame> pending_;
  uint64_t frames_parsed_ = 0;

  std::deque<std::string> write_queue_;
  size_t write_offset_ = 0;  // consumed prefix of write_queue_.front()
  size_t write_queued_ = 0;  // total unconsumed bytes across the queue
};

}  // namespace hypermine::net

#endif  // HYPERMINE_NET_CONNECTION_H_
