#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "net/backoff.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace hypermine::net {
namespace {

Status Errno(const char* what) {
  return Status::IoError(StrFormat("%s: %s", what, std::strerror(errno)));
}

/// Frames are tiny relative to the kernel buffer; batching happens at the
/// protocol layer, so Nagle only adds latency here.
void DisableNagle(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<Socket> Socket::Connect(const std::string& host, uint16_t port,
                                 int retry_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(retry_ms);
  struct addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* addrs = nullptr;
  const std::string service = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &addrs);
  if (rc != 0) {
    return Status::InvalidArgument(StrFormat("cannot resolve %s: %s",
                                             host.c_str(),
                                             ::gai_strerror(rc)));
  }

  Status last = Status::IoError("no addresses for " + host);
  const BackoffPolicy backoff{/*base_ms=*/10, /*max_ms=*/500,
                              /*jitter=*/false};
  for (int attempt = 0;; ++attempt) {
    for (struct addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
      int fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
      if (fd < 0) {
        last = Errno("socket");
        continue;
      }
      if (::connect(fd, a->ai_addr, a->ai_addrlen) == 0) {
        ::freeaddrinfo(addrs);
        DisableNagle(fd);
        return Socket(fd);
      }
      last = Errno("connect");
      ::close(fd);
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    // Server not up yet (CI races startup): capped exponential backoff,
    // clamped so the last sleep ends exactly at the retry budget.
    auto wait = std::chrono::milliseconds(BackoffDelayMs(backoff, attempt));
    if (now + wait > deadline) {
      wait = std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                   now);
    }
    std::this_thread::sleep_for(wait);
  }
  ::freeaddrinfo(addrs);
  return last;
}

namespace {

Status SetFdNonBlocking(int fd, bool enable, const char* what) {
  if (fd < 0) return Status::FailedPrecondition("invalid descriptor");
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno(what);
  const int wanted = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags && ::fcntl(fd, F_SETFL, wanted) < 0) {
    return Errno(what);
  }
  return Status::OK();
}

}  // namespace

Status Socket::SetNonBlocking(bool enable) {
  return SetFdNonBlocking(fd_, enable, "fcntl(socket)");
}

namespace {

Status SetIoTimeout(int fd, int optname, int timeout_ms, const char* what) {
  if (fd < 0) return Status::FailedPrecondition("invalid descriptor");
  if (timeout_ms < 0) return Status::InvalidArgument("negative timeout");
  struct timeval tv = {};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv)) != 0) {
    return Errno(what);
  }
  return Status::OK();
}

}  // namespace

Status Socket::SetReadTimeoutMs(int timeout_ms) {
  return SetIoTimeout(fd_, SO_RCVTIMEO, timeout_ms, "setsockopt(SO_RCVTIMEO)");
}

Status Socket::SetWriteTimeoutMs(int timeout_ms) {
  return SetIoTimeout(fd_, SO_SNDTIMEO, timeout_ms, "setsockopt(SO_SNDTIMEO)");
}

Socket::IoResult Socket::ReadSome(void* out, size_t len) {
  IoResult result;
  if (fault::ShouldFail("socket.read")) {
    result.status = Status::IoError("injected fault: socket.read");
    return result;
  }
  if (len > 1 && fault::ShouldFail("socket.read.short")) {
    len = 1;  // force the framing machine through its partial-read paths
  }
  for (;;) {
    ssize_t n = ::read(fd_, out, len);
    if (n > 0) {
      result.bytes = static_cast<size_t>(n);
      return result;
    }
    if (n == 0) {
      result.closed = len > 0;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.would_block = true;
      return result;
    }
    result.status = Errno("read");
    return result;
  }
}

Socket::IoResult Socket::WriteSome(const void* data, size_t len) {
  IoResult result;
  if (fault::ShouldFail("socket.write")) {
    result.status = Status::IoError("injected fault: socket.write");
    return result;
  }
  if (len > 1 && fault::ShouldFail("socket.write.short")) {
    len = 1;  // exercise the reactor's partial-write / EPOLLOUT path
  }
  for (;;) {
    ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n >= 0) {
      result.bytes = static_cast<size_t>(n);
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.would_block = true;
      return result;
    }
    result.status = Errno("write");
    return result;
  }
}

Status Socket::ReadFull(void* out, size_t len) {
  if (len > 0 && fault::ShouldFail("socket.read")) {
    return Status::IoError("injected fault: socket.read");
  }
  char* cursor = static_cast<char*>(out);
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::read(fd_, cursor + got, len - got);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got == 0) return Status::NotFound("connection closed");
      return Status::Corrupted(
          StrFormat("connection closed mid-read (%zu of %zu bytes)", got,
                    len));
    }
    if (errno == EINTR) continue;
    // On a blocking socket EAGAIN only happens when SO_RCVTIMEO expired.
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded(
          StrFormat("read timed out (%zu of %zu bytes)", got, len));
    }
    return Errno("read");
  }
  return Status::OK();
}

Status Socket::WriteAll(const void* data, size_t len) {
  if (len > 0 && fault::ShouldFail("socket.write")) {
    return Status::IoError("injected fault: socket.write");
  }
  const char* cursor = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd_, cursor + sent, len - sent, MSG_NOSIGNAL);
    if (n >= 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    // On a blocking socket EAGAIN only happens when SO_SNDTIMEO expired.
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded(
          StrFormat("write timed out (%zu of %zu bytes)", sent, len));
    }
    return Errno("write");
  }
  return Status::OK();
}

bool Socket::Readable(int timeout_ms) const {
  struct pollfd pfd = {};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  int rc = ::poll(&pfd, 1, timeout_ms);
  return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::~Listener() { Close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<Listener> Listener::Bind(uint16_t port, int backlog,
                                  bool reuse_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port) {
#ifdef SO_REUSEPORT
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      Status status = Errno("setsockopt(SO_REUSEPORT)");
      ::close(fd);
      return status;
    }
#else
    ::close(fd);
    return Status::Unimplemented("SO_REUSEPORT not available on this OS");
#endif
  }

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Errno("bind");
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    Status status = Errno("listen");
    ::close(fd);
    return status;
  }

  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) != 0) {
    Status status = Errno("getsockname");
    ::close(fd);
    return status;
  }
  Listener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Status Listener::SetNonBlocking(bool enable) {
  return SetFdNonBlocking(fd_, enable, "fcntl(listener)");
}

StatusOr<Socket> Listener::Accept() {
  if (fd_ < 0) return Status::FailedPrecondition("listener is shut down");
  if (fault::ShouldFail("socket.accept")) {
    return Status::IoError("injected fault: socket.accept");
  }
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      DisableNagle(fd);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::ResourceExhausted("no pending connection");
    }
    // EINVAL/EBADF after a concurrent Shutdown is the clean-stop path.
    if (errno == EINVAL || errno == EBADF) {
      return Status::FailedPrecondition("listener is shut down");
    }
    return Errno("accept");
  }
}

bool Listener::WouldBlock(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted &&
         status.message() == "no pending connection";
}

void Listener::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace hypermine::net
