#ifndef HYPERMINE_NET_SOCKET_H_
#define HYPERMINE_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace hypermine::net {

/// Owning wrapper around one connected TCP stream socket. Move-only; the
/// descriptor is closed on destruction. Reads and writes are blocking and
/// loop over partial transfers (EINTR included), so ReadFull/WriteAll
/// either transfer every byte or report why they could not.
///
/// Thread-safety: one Socket may be used by at most one reader and one
/// writer thread concurrently (full-duplex); concurrent calls to the same
/// direction are not synchronized.
class Socket {
 public:
  Socket() = default;
  /// Takes ownership of an already-connected descriptor.
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port (numeric IPv4 or a resolvable name).
  /// `retry_ms` > 0 keeps retrying refused connections for that long —
  /// used by clients racing a server that is still binding its port.
  /// Retries follow the capped exponential schedule in net/backoff.h
  /// (10 ms doubling to 500 ms, jitter-free), clamped to the budget.
  static StatusOr<Socket> Connect(const std::string& host, uint16_t port,
                                  int retry_ms = 0);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// One nonblocking transfer attempt (used by the event-loop server;
  /// the blocking Read/Write paths below are unaffected). Exactly one of
  /// the fields describes the outcome.
  struct IoResult {
    /// Bytes transferred now (0 with everything else false only for
    /// zero-length requests).
    size_t bytes = 0;
    /// EAGAIN/EWOULDBLOCK: nothing transferable; retry when the event
    /// loop signals readiness.
    bool would_block = false;
    /// Read side only: the peer closed its write half (EOF).
    bool closed = false;
    /// A real transport error (reset, EPIPE, ...).
    Status status;
  };

  /// Switches the descriptor between blocking and nonblocking mode.
  Status SetNonBlocking(bool enable);

  /// Caps how long a blocking read may wait for bytes (SO_RCVTIMEO);
  /// 0 disables the cap. When it expires, ReadFull reports
  /// kDeadlineExceeded. Clients use this to enforce CallOptions
  /// deadlines without restructuring onto nonblocking IO.
  Status SetReadTimeoutMs(int timeout_ms);

  /// Caps how long a blocking write may wait for buffer space
  /// (SO_SNDTIMEO); 0 disables. WriteAll reports kDeadlineExceeded.
  Status SetWriteTimeoutMs(int timeout_ms);

  /// Reads whatever is available, at most `len` bytes.
  IoResult ReadSome(void* out, size_t len);

  /// Writes what the kernel will take, at most `len` bytes.
  IoResult WriteSome(const void* data, size_t len);

  /// Reads exactly `len` bytes into `out`. kIoError on a read error;
  /// kCorrupted("connection closed...") when the peer closed mid-buffer;
  /// kNotFound("connection closed") on a clean close at offset 0 — the
  /// caller distinguishes "peer finished" from "peer died mid-frame";
  /// kDeadlineExceeded when a SetReadTimeoutMs cap expired first.
  Status ReadFull(void* out, size_t len);

  /// Writes all `len` bytes. kIoError when the peer is gone (EPIPE/reset);
  /// kDeadlineExceeded when a SetWriteTimeoutMs cap expired first.
  Status WriteAll(const void* data, size_t len);

  /// True when at least one byte is readable within `timeout_ms`
  /// (0 = poll without blocking). Used to coalesce already-arrived frames
  /// into one engine batch without stalling for future ones.
  bool Readable(int timeout_ms) const;

  /// Shuts down both directions (wakes a blocked reader on another
  /// thread) without closing the descriptor. Safe on an invalid socket.
  void Shutdown();

  /// Closes the descriptor now (idempotent).
  void Close();

 private:
  int fd_ = -1;
};

/// Owning wrapper around a listening TCP socket bound to 127.0.0.1.
/// Move-only. Accept() blocks until a client connects or Shutdown() is
/// called from another thread.
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens on 127.0.0.1:port with SO_REUSEADDR; port 0 picks
  /// an ephemeral port (read it back with port()). `reuse_port` also sets
  /// SO_REUSEPORT before binding, so several listeners — one per reactor —
  /// can share one port and let the kernel spread accepted connections
  /// across them. Every sharer must pass it, including the first one.
  static StatusOr<Listener> Bind(uint16_t port, int backlog = 128,
                                 bool reuse_port = false);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// The actually bound port (resolves port 0 to the kernel's choice).
  uint16_t port() const { return port_; }

  /// Switches the listening descriptor between blocking and nonblocking
  /// mode (the event-loop server accepts nonblocking so a spurious
  /// readiness event cannot park the reactor in accept()).
  Status SetNonBlocking(bool enable);

  /// Blocks for the next connection (or, on a nonblocking listener,
  /// returns kResourceExhausted with message "no pending connection" when
  /// none is queued — use WouldBlock() on the status to distinguish it
  /// from a real accept backlog problem). kFailedPrecondition after
  /// Shutdown; kIoError on accept failures.
  StatusOr<Socket> Accept();

  /// True when `status` is Accept()'s nonblocking "nothing queued" case.
  static bool WouldBlock(const Status& status);

  /// Unblocks a concurrent Accept() and makes all future Accepts fail.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace hypermine::net

#endif  // HYPERMINE_NET_SOCKET_H_
