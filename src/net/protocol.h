#ifndef HYPERMINE_NET_PROTOCOL_H_
#define HYPERMINE_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/engine.h"
#include "net/socket.h"
#include "util/status.h"

namespace hypermine::net {

/// Framed wire protocol for B-reachability / top-k association queries —
/// the normative byte-level spec lives in docs/protocol.md; this header is
/// its implementation. All integers are little-endian. Every frame is a
/// fixed 24-byte header followed by `body_len` body bytes.
///
/// Queries travel as vertex *names*, never ids: ids are per-model and a
/// hot swap (api::Engine::Swap) would silently re-address them; names are
/// resolved against the model that answers (api::Engine does exactly
/// this), and responses carry names back for the same reason.

/// "HMNP" in file order (reads as HM net protocol).
inline constexpr uint32_t kFrameMagic = 0x504E4D48u;
/// Version this build speaks. A server answers a frame whose version it
/// does not speak with kUnimplemented (header intact, so the connection
/// survives the rejection).
inline constexpr uint16_t kProtocolVersion = 1;
/// Hard protocol cap on body_len. A header announcing more is framing
/// corruption (not a big request) and is connection-fatal.
inline constexpr uint32_t kMaxBodyBytes = 16u << 20;
/// Longest vertex name / error message the wire format can carry.
inline constexpr size_t kMaxStringBytes = 0xFFFF;
inline constexpr size_t kFrameHeaderBytes = 24;

enum class FrameType : uint16_t {
  kQuery = 1,
  kResponse = 2,
};

/// The fixed preamble of every frame.
struct FrameHeader {
  uint32_t magic = kFrameMagic;
  uint16_t version = kProtocolVersion;
  uint16_t type = 0;
  /// Client-chosen correlation id, echoed verbatim in the response.
  uint64_t request_id = 0;
  uint32_t body_len = 0;
  /// Must be zero (reserved for flags in a future version).
  uint32_t reserved = 0;
};

/// One ranked consequent as it travels over the wire.
struct WireConsequent {
  std::string name;
  double acv = 0.0;

  friend bool operator==(const WireConsequent&,
                         const WireConsequent&) = default;
};

/// A decoded response frame body: the StatusOr<api::QueryResponse> of the
/// engine, flattened into wire-friendly fields with vertex ids resolved to
/// names. `status` is OK for answered queries; otherwise `ranked`/`closure`
/// are empty and `message` explains (quota exhaustion arrives here as
/// StatusCode::kResourceExhausted).
struct WireResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  uint64_t model_version = 0;
  bool from_cache = false;
  api::QueryRequest::Kind kind = api::QueryRequest::Kind::kTopK;
  std::vector<WireConsequent> ranked;
  std::vector<std::string> closure;

  Status ToStatus() const {
    return code == StatusCode::kOk ? Status::OK() : Status(code, message);
  }
};

/// Serializes `header` (with header.body_len already set) into 24 bytes.
void EncodeFrameHeader(const FrameHeader& header, std::string* out);

/// Parses a 24-byte header. kCorrupted on short input, bad magic, nonzero
/// reserved bits, or a body_len above kMaxBodyBytes. Deliberately does NOT
/// reject foreign versions — the caller answers those with a status frame
/// instead of dropping the connection (see docs/protocol.md §4).
Status DecodeFrameHeader(std::string_view data, FrameHeader* header);

/// Encodes a complete query frame (header + body). Only `request.names`
/// travel; kInvalidArgument when names are absent, too many
/// (api::kMaxQueryItems), or a name exceeds kMaxStringBytes.
Status EncodeQueryFrame(uint64_t request_id, const api::QueryRequest& request,
                        std::string* out);

/// Decodes a query frame body into a name-based api::QueryRequest.
/// kCorrupted on truncation or trailing garbage; kInvalidArgument on
/// an unknown query kind.
Status DecodeQueryBody(std::string_view body, api::QueryRequest* request);

/// Encodes a complete response frame (header + body). `version` lets the
/// server stamp its own protocol version when rejecting a foreign one.
Status EncodeResponseFrame(uint64_t request_id, const WireResponse& response,
                           std::string* out,
                           uint16_t version = kProtocolVersion);

/// Decodes a response frame body. kCorrupted on truncation or trailing
/// garbage.
Status DecodeResponseBody(std::string_view body, WireResponse* response);

/// Reads one frame (header + body) off a socket. `max_body` tightens the
/// protocol cap (a server's configured request limit); a body_len above it
/// yields kInvalidArgument with the body left unread — the caller decides
/// whether the connection can be salvaged. kNotFound propagates a clean
/// peer close between frames.
Status ReadFrame(Socket* socket, FrameHeader* header, std::string* body,
                 uint32_t max_body = kMaxBodyBytes);

}  // namespace hypermine::net

#endif  // HYPERMINE_NET_PROTOCOL_H_
