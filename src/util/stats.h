#ifndef HYPERMINE_UTIL_STATS_H_
#define HYPERMINE_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace hypermine {

/// Descriptive statistics over a sample. All functions taking a vector
/// require it to be non-empty unless stated otherwise.
double Mean(const std::vector<double>& xs);
/// Population variance (divide by n).
double Variance(const std::vector<double>& xs);
/// Sample variance (divide by n-1); requires at least two elements.
double SampleVariance(const std::vector<double>& xs);
double StdDev(const std::vector<double>& xs);
double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);
double Sum(const std::vector<double>& xs);

/// Linear-interpolated percentile; p in [0, 100]. Copies and sorts.
double Percentile(std::vector<double> xs, double p);
double Median(std::vector<double> xs);

/// Pearson product-moment correlation; returns 0 when either side is
/// constant. Requires equal, non-zero lengths.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Spearman rank correlation (Pearson on average-ranked data).
double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys);

/// Average ranks (1-based, ties averaged), as used by Spearman.
std::vector<double> AverageRanks(const std::vector<double>& xs);

/// Compact five-number-style summary used in bench output.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;

  std::string ToString() const;
};

Summary Summarize(const std::vector<double>& xs);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double x);
  void AddAll(const std::vector<double>& xs);

  size_t bucket_count() const { return counts_.size(); }
  size_t count(size_t bucket) const { return counts_[bucket]; }
  size_t total() const { return total_; }
  /// Inclusive lower edge of the bucket.
  double bucket_lo(size_t bucket) const;
  double bucket_hi(size_t bucket) const;

  /// Multi-line ASCII rendering with proportional bars.
  std::string ToString(size_t max_bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace hypermine

#endif  // HYPERMINE_UTIL_STATS_H_
