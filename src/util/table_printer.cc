#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

namespace hypermine {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(Row{false, std::move(cells)});
}

void TablePrinter::AddSeparator() { rows_.push_back(Row{true, {}}); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(columns_.size(), 0);
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto hline = [&widths]() {
    std::string line = "+";
    for (size_t w : widths) {
      line += std::string(w + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };
  auto format_row = [&widths](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    line += "\n";
    return line;
  };

  std::ostringstream os;
  os << hline() << format_row(columns_) << hline();
  for (const Row& row : rows_) {
    os << (row.separator ? hline() : format_row(row.cells));
  }
  os << hline();
  return os.str();
}

}  // namespace hypermine
