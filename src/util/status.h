#ifndef HYPERMINE_UTIL_STATUS_H_
#define HYPERMINE_UTIL_STATUS_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace hypermine {

/// Canonical error codes, modeled after absl::StatusCode. The project does
/// not use C++ exceptions; fallible operations return Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kAlreadyExists = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIoError = 8,
  /// Persisted data failed an integrity check (bad magic, checksum
  /// mismatch, truncation) — distinct from kIoError, which is the
  /// filesystem failing, not the bytes lying.
  kCorrupted = 9,
  /// A quota or capacity limit was hit (per-client query quota, server
  /// queue depth). The request was well-formed and may succeed if retried
  /// later — distinct from kInvalidArgument, which never will.
  kResourceExhausted = 10,
  /// The service is temporarily unable to answer (load shed, draining,
  /// connection refused/lost). Retrying with backoff is the expected
  /// response — distinct from kResourceExhausted, which reports a
  /// per-caller quota rather than server-side pressure.
  kUnavailable = 11,
  /// The caller's deadline expired before an answer arrived. The request
  /// may still be executing server-side; retrying is safe only because
  /// queries are read-only.
  kDeadlineExceeded = 12,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap value type carrying either success (OK) or an error code plus a
/// descriptive message. Copyable and movable.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A message on an OK
  /// status is allowed but ignored by ok().
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corrupted(std::string msg) {
    return Status(StatusCode::kCorrupted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or a non-OK Status explaining why the value is
/// absent. Accessing value() on an error aborts the process (invariant
/// violation), so callers must check ok() first or use ASSIGN_OR_RETURN.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (success).
  StatusOr(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure). Constructing from
  /// an OK status is an error and is converted to kInternal.
  StatusOr(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("StatusOr constructed with OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns OK when holding a value, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T&& value() && {
    AbortIfError();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value, or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  void AbortIfError() const {
    if (!ok()) {
      std::abort();
    }
  }

  std::variant<Status, T> repr_;
};

/// Propagates a non-OK Status out of the current function.
#define HM_RETURN_IF_ERROR(expr)            \
  do {                                      \
    ::hypermine::Status hm_status = (expr); \
    if (!hm_status.ok()) return hm_status;  \
  } while (false)

/// Evaluates a StatusOr expression; on error returns the Status, otherwise
/// assigns the value into `lhs` (which must be a declaration or lvalue).
#define HM_ASSIGN_OR_RETURN(lhs, expr)                  \
  HM_ASSIGN_OR_RETURN_IMPL_(                            \
      HM_STATUS_CONCAT_(hm_statusor_, __LINE__), lhs, expr)

#define HM_STATUS_CONCAT_INNER_(a, b) a##b
#define HM_STATUS_CONCAT_(a, b) HM_STATUS_CONCAT_INNER_(a, b)
#define HM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value();

}  // namespace hypermine

#endif  // HYPERMINE_UTIL_STATUS_H_
