#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace hypermine {

size_t ThreadPool::HardwareThreads() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = num_threads == 0 ? HardwareThreads() : num_threads;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      cv_.Wait(mutex_,
               [this]() HM_REQUIRES(mutex_) {
                 return shutting_down_ || !pending_.empty();
               });
      if (pending_.empty()) return;  // shutting down with a drained queue
      task = std::move(pending_.back());
      pending_.pop_back();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    pending_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::SubmitAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    MutexLock lock(mutex_);
    for (std::function<void()>& task : tasks) {
      pending_.push_back(std::move(task));
    }
  }
  cv_.NotifyAll();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Shared cursor state. Helper tasks hold shared ownership because a
  // queued helper can wake after the caller already finished every index
  // and returned; such a helper only reads the exhausted cursor and exits
  // without touching `body`.
  struct State {
    const std::function<void(size_t)>* body = nullptr;
    size_t n = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    Mutex mutex;
    CondVar cv;
    bool complete HM_GUARDED_BY(mutex) = false;
  };
  auto state = std::make_shared<State>();
  state->body = &body;
  state->n = n;

  auto drain = [](const std::shared_ptr<State>& s) {
    size_t i;
    while ((i = s->next.fetch_add(1)) < s->n) {
      (*s->body)(i);
      if (s->done.fetch_add(1) + 1 == s->n) {
        MutexLock lock(s->mutex);
        s->complete = true;
        s->cv.NotifyAll();
      }
    }
  };

  std::vector<std::function<void()>> helpers;
  helpers.reserve(std::min(workers_.size(), n - 1));
  for (size_t c = 0; c < std::min(workers_.size(), n - 1); ++c) {
    helpers.emplace_back([state, drain] { drain(state); });
  }
  SubmitAll(std::move(helpers));
  drain(state);

  MutexLock lock(state->mutex);
  state->cv.Wait(state->mutex, [&state]() HM_REQUIRES(state->mutex) {
    return state->complete;
  });
}

}  // namespace hypermine
