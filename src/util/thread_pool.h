#ifndef HYPERMINE_UTIL_THREAD_POOL_H_
#define HYPERMINE_UTIL_THREAD_POOL_H_

#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace hypermine {

/// Fixed-size worker pool shared by the serving engine (serve::QueryEngine)
/// and the hypergraph builder (core::BuildAssociationHypergraph). Tasks are
/// plain closures; Submit never blocks. Tasks still queued at destruction
/// time are drained, not dropped — a queued batch chunk always runs, which
/// is what QueryEngine's blocking QueryBatch semantics require.
class ThreadPool {
 public:
  /// Starts `num_threads` workers; 0 = HardwareThreads().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Enqueues a batch of tasks with one lock/notify round.
  void SubmitAll(std::vector<std::function<void()>> tasks);

  /// Runs body(0) .. body(n - 1), distributing indices over the workers via
  /// an atomic cursor; the calling thread participates, so a ParallelFor on
  /// a pool of w workers uses up to w + 1 threads. Blocks until every index
  /// has completed. Which thread runs which index is nondeterministic —
  /// callers needing deterministic output must make body(i) depend only
  /// on i (the hypergraph builder's per-head-block buffers do exactly
  /// this, then merge serially).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// std::thread::hardware_concurrency with a floor of 1.
  static size_t HardwareThreads();

 private:
  void WorkerLoop();

  Mutex mutex_;
  CondVar cv_;
  std::vector<std::function<void()>> pending_ HM_GUARDED_BY(mutex_);
  bool shutting_down_ HM_GUARDED_BY(mutex_) = false;
  /// Written once by the constructor before any worker exists, then only
  /// read (num_threads, joins) — no lock needed.
  std::vector<std::thread> workers_;
};

}  // namespace hypermine

#endif  // HYPERMINE_UTIL_THREAD_POOL_H_
