#include "util/fault.h"

#include <chrono>
#include <thread>

namespace hypermine::fault {
namespace {

/// SplitMix64 step — the same mixer util::Rng seeds from, small enough to
/// inline here so the injector has no dependency on the experiment RNG.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t HashSiteName(std::string_view site) {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a, matching the snapshot's
  for (unsigned char c : site) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

double NextDouble(uint64_t* state) {
  // 53 mantissa bits -> [0, 1).
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

Injector& Injector::Global() {
  static Injector* injector = new Injector();  // never destroyed
  return *injector;
}

void Injector::Enable(uint64_t seed) {
  MutexLock lock(mutex_);
  seed_ = seed;
  enabled_.store(true, std::memory_order_relaxed);
}

void Injector::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Injector::Reset() {
  enabled_.store(false, std::memory_order_relaxed);
  MutexLock lock(mutex_);
  sites_.clear();
  seed_ = 0;
}

void Injector::Arm(std::string_view site, SiteConfig config) {
  MutexLock lock(mutex_);
  Site& s = sites_[std::string(site)];
  s.config = config;
  s.rng_state = seed_ ^ HashSiteName(site);
  s.hits = 0;
  s.fires = 0;
}

void Injector::Disarm(std::string_view site) {
  MutexLock lock(mutex_);
  auto it = sites_.find(site);
  if (it != sites_.end()) sites_.erase(it);
}

bool Injector::ShouldFire(std::string_view site) {
  return ShouldFire(site, nullptr);
}

bool Injector::ShouldFire(std::string_view site, int* delay_ms) {
  MutexLock lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  Site& s = it->second;
  const uint64_t hit = s.hits++;
  if (hit < static_cast<uint64_t>(s.config.skip_first)) return false;
  if (s.config.max_fires >= 0 &&
      s.fires >= static_cast<uint64_t>(s.config.max_fires)) {
    return false;
  }
  // Draw even for probability 1.0 so the stream position depends only on
  // the hit count, never on the configured probability.
  const double draw = NextDouble(&s.rng_state);
  if (draw >= s.config.probability) return false;
  ++s.fires;
  if (delay_ms != nullptr) *delay_ms = s.config.delay_ms;
  return true;
}

uint64_t Injector::fires(std::string_view site) const {
  MutexLock lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

uint64_t Injector::hits(std::string_view site) const {
  MutexLock lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

void MaybeDelay(std::string_view site) {
  Injector& injector = Injector::Global();
  if (!injector.enabled()) return;
  int delay_ms = 0;
  if (injector.ShouldFire(site, &delay_ms) && delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
}

}  // namespace hypermine::fault
