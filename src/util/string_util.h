#ifndef HYPERMINE_UTIL_STRING_UTIL_H_
#define HYPERMINE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace hypermine {

/// Splits on a single character; keeps empty fields ("a,,b" -> 3 fields).
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on any whitespace run; drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

std::string_view TrimView(std::string_view text);
std::string Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

std::string ToLower(std::string_view text);
std::string ToUpper(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Fixed-precision double rendering ("0.437"), matching the paper's tables.
std::string FormatDouble(double value, int precision = 3);

/// Parses a double/int; returns false (leaving *out untouched) on any
/// trailing garbage or empty input.
bool ParseDouble(std::string_view text, double* out);
bool ParseInt64(std::string_view text, int64_t* out);

}  // namespace hypermine

#endif  // HYPERMINE_UTIL_STRING_UTIL_H_
