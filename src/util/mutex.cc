#include "util/mutex.h"

namespace hypermine {

// Both waits adopt the already-held std::mutex into a unique_lock for the
// std::condition_variable call, then release() so the RAII wrapper does not
// unlock a mutex our caller still owns (the HM_REQUIRES contract: held on
// entry, held on return).

void CondVar::Wait(Mutex& mutex) {
  std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

bool CondVar::WaitFor(Mutex& mutex, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
  const std::cv_status status = cv_.wait_for(lock, timeout);
  lock.release();
  return status == std::cv_status::no_timeout;
}

}  // namespace hypermine
