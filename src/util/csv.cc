#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace hypermine {

namespace {

/// Splits raw CSV text into records of fields, honoring quoted fields.
StatusOr<std::vector<std::vector<std::string>>> Tokenize(
    const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool any_char = false;

  auto end_field = [&]() {
    fields.push_back(std::move(field));
    field.clear();
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(std::move(fields));
    fields.clear();
    any_char = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      any_char = true;
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        any_char = true;
        break;
      case ',':
        end_field();
        any_char = true;
        break;
      case '\r':
        break;  // Tolerate CRLF line endings.
      case '\n':
        if (any_char || !field.empty() || !fields.empty()) end_record();
        break;
      default:
        field.push_back(c);
        any_char = true;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("CSV: unterminated quoted field");
  }
  if (any_char || !field.empty() || !fields.empty()) end_record();
  return records;
}

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

void AppendField(const std::string& field, std::string* out) {
  if (!NeedsQuoting(field)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

StatusOr<CsvDocument> ParseCsv(const std::string& text, bool has_header) {
  HM_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> records,
                      Tokenize(text));
  CsvDocument doc;
  size_t start = 0;
  if (has_header) {
    if (records.empty()) {
      return Status::InvalidArgument("CSV: missing header row");
    }
    doc.header = records[0];
    start = 1;
  }
  size_t expected = has_header ? doc.header.size()
                               : (records.empty() ? 0 : records[0].size());
  for (size_t i = start; i < records.size(); ++i) {
    if (records[i].size() != expected) {
      return Status::InvalidArgument(
          StrFormat("CSV: row %zu has %zu fields, expected %zu", i,
                    records[i].size(), expected));
    }
    doc.rows.push_back(std::move(records[i]));
  }
  return doc;
}

StatusOr<CsvDocument> ReadCsvFile(const std::string& path, bool has_header) {
  HM_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseCsv(text, has_header);
}

std::string WriteCsvString(const CsvDocument& doc) {
  std::string out;
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendField(row[i], &out);
    }
    out.push_back('\n');
  };
  if (!doc.header.empty()) write_row(doc.header);
  for (const auto& row : doc.rows) write_row(row);
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvDocument& doc) {
  return WriteStringToFile(path, WriteCsvString(doc));
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read failed: " + path);
  }
  return buffer.str();
}

Status WriteStringToFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << text;
  out.flush();
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace hypermine
