#include "util/matrix.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace hypermine {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    HM_CHECK_EQ(rows[r].size(), m.cols());
    for (size_t c = 0; c < m.cols(); ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

double& Matrix::At(size_t r, size_t c) {
  HM_CHECK_LT(r, rows_);
  HM_CHECK_LT(c, cols_);
  return data_[r * cols_ + c];
}

double Matrix::At(size_t r, size_t c) const {
  HM_CHECK_LT(r, rows_);
  HM_CHECK_LT(c, cols_);
  return data_[r * cols_ + c];
}

double* Matrix::RowPtr(size_t r) {
  HM_CHECK_LT(r, rows_);
  return data_.data() + r * cols_;
}

const double* Matrix::RowPtr(size_t r) const {
  HM_CHECK_LT(r, rows_);
  return data_.data() + r * cols_;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      t.At(c, r) = At(r, c);
    }
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  HM_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double aik = At(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.RowPtr(k);
      double* orow = out.RowPtr(i);
      for (size_t j = 0; j < other.cols_; ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
  return out;
}

std::vector<double> Matrix::Apply(const std::vector<double>& v) const {
  HM_CHECK_EQ(v.size(), cols_);
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix& Matrix::AddInPlace(const Matrix& other) {
  HM_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::ScaleInPlace(double factor) {
  for (double& x : data_) x *= factor;
  return *this;
}

double Matrix::Norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  for (size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << At(r, c);
    }
    os << "]\n";
  }
  return os.str();
}

StatusOr<std::vector<double>> SolveLinearSystem(Matrix a,
                                                std::vector<double> b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SolveLinearSystem: matrix not square");
  }
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("SolveLinearSystem: size mismatch");
  }
  const size_t n = a.rows();
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting: move the largest-magnitude entry into the pivot row.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a.At(r, col)) > std::fabs(a.At(pivot, col))) pivot = r;
    }
    if (std::fabs(a.At(pivot, col)) < 1e-12) {
      return Status::FailedPrecondition(
          "SolveLinearSystem: matrix is singular");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a.At(col, c), a.At(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    double inv = 1.0 / a.At(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      double factor = a.At(r, col) * inv;
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) {
        a.At(r, c) -= factor * a.At(col, c);
      }
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (size_t c = ri + 1; c < n; ++c) acc -= a.At(ri, c) * x[c];
    x[ri] = acc / a.At(ri, ri);
  }
  return x;
}

StatusOr<std::vector<double>> SolveLeastSquares(const Matrix& x,
                                                const std::vector<double>& y,
                                                double ridge) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("SolveLeastSquares: size mismatch");
  }
  Matrix xt = x.Transposed();
  Matrix xtx = xt.Multiply(x);
  for (size_t i = 0; i < xtx.rows(); ++i) xtx.At(i, i) += ridge;
  std::vector<double> xty = xt.Apply(y);
  return SolveLinearSystem(std::move(xtx), std::move(xty));
}

}  // namespace hypermine
