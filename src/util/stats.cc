#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/logging.h"

namespace hypermine {

double Sum(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

double Mean(const std::vector<double>& xs) {
  HM_CHECK(!xs.empty());
  return Sum(xs) / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  HM_CHECK(!xs.empty());
  double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size());
}

double SampleVariance(const std::vector<double>& xs) {
  HM_CHECK_GE(xs.size(), 2u);
  double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size() - 1);
}

double StdDev(const std::vector<double>& xs) {
  return std::sqrt(Variance(xs));
}

double Min(const std::vector<double>& xs) {
  HM_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  HM_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double Percentile(std::vector<double> xs, double p) {
  HM_CHECK(!xs.empty());
  HM_CHECK_GE(p, 0.0);
  HM_CHECK_LE(p, 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double pos = (p / 100.0) * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double Median(std::vector<double> xs) { return Percentile(std::move(xs), 50.0); }

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  HM_CHECK_EQ(xs.size(), ys.size());
  HM_CHECK(!xs.empty());
  double mx = Mean(xs);
  double my = Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    double dx = xs[i] - mx;
    double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> AverageRanks(const std::vector<double>& xs) {
  size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&xs](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average 1-based rank for the tie group [i, j].
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t t = i; t <= j; ++t) ranks[order[t]] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  HM_CHECK_EQ(xs.size(), ys.size());
  return PearsonCorrelation(AverageRanks(xs), AverageRanks(ys));
}

std::string Summary::ToString() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(4);
  os << "n=" << count << " mean=" << mean << " sd=" << stddev
     << " min=" << min << " p25=" << p25 << " med=" << median
     << " p75=" << p75 << " max=" << max;
  return os.str();
}

Summary Summarize(const std::vector<double>& xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.mean = Mean(xs);
  s.stddev = StdDev(xs);
  s.min = Min(xs);
  s.p25 = Percentile(xs, 25.0);
  s.median = Percentile(xs, 50.0);
  s.p75 = Percentile(xs, 75.0);
  s.max = Max(xs);
  return s;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  HM_CHECK_GT(bins, 0u);
  HM_CHECK_LT(lo, hi);
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::Add(double x) {
  double clamped = std::clamp(x, lo_, hi_);
  size_t bucket = static_cast<size_t>((clamped - lo_) / width_);
  if (bucket >= counts_.size()) bucket = counts_.size() - 1;
  ++counts_[bucket];
  ++total_;
}

void Histogram::AddAll(const std::vector<double>& xs) {
  for (double x : xs) Add(x);
}

double Histogram::bucket_lo(size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::bucket_hi(size_t bucket) const {
  return bucket + 1 == counts_.size() ? hi_ : bucket_lo(bucket + 1);
}

std::string Histogram::ToString(size_t max_bar_width) const {
  size_t peak = 0;
  for (size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  for (size_t b = 0; b < counts_.size(); ++b) {
    size_t bar = peak == 0 ? 0 : counts_[b] * max_bar_width / peak;
    os << "[" << bucket_lo(b) << ", " << bucket_hi(b) << ") "
       << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return os.str();
}

}  // namespace hypermine
