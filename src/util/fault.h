#ifndef HYPERMINE_UTIL_FAULT_H_
#define HYPERMINE_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace hypermine::fault {

/// Deterministic fault injection (docs/robustness.md). Production code is
/// sprinkled with named *sites* — `fault::ShouldFail("socket.read")` before
/// a read, `fault::MaybeDelay("engine.batch")` before a batch — that decide
/// whether to simulate a failure right here, right now. A chaos harness
/// arms sites with per-site probability/count triggers and a seed; every
/// other process never arms anything and pays exactly one relaxed atomic
/// load + a predicted branch per site (the injector starts disabled and
/// there is no way to enable it from config or the environment — only code
/// that links a test can).
///
/// Determinism: each site draws from its own SplitMix64 stream seeded from
/// (global seed, site name), so for a fixed seed the decision sequence of a
/// site depends only on how many times that site was hit before — not on
/// which other sites fired in between. Concurrent hits on one site are
/// serialized under a mutex; across threads the interleaving (and thus the
/// exact schedule) is OS-dependent, which is the point of a chaos run —
/// the seed still pins each site's decision *sequence*.

/// Trigger configuration for one armed site.
struct SiteConfig {
  /// Chance that a hit fires, evaluated per hit.
  double probability = 1.0;
  /// Hits that can fire before the site goes quiet; -1 = unlimited.
  int max_fires = -1;
  /// The first `skip_first` hits never fire (lets a connection establish
  /// before its sockets start failing).
  int skip_first = 0;
  /// For delay sites (MaybeDelay): injected stall length when firing.
  int delay_ms = 0;
};

class Injector {
 public:
  /// The process-wide injector every site consults.
  static Injector& Global();

  /// Arms the injector with a seed. Sites still need Arm() to do anything.
  void Enable(uint64_t seed);
  /// Stops all firing; armed sites stay configured (counters intact).
  void Disable();
  /// Disables and forgets every site and counter.
  void Reset();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Configures one site. Re-arming resets its hit/fire counters and
  /// reseeds its stream (so a phase can restart a site deterministically).
  void Arm(std::string_view site, SiteConfig config);
  /// Removes one site (its hits stop firing and stop counting).
  void Disarm(std::string_view site);

  /// True when the armed site `site` decides this hit fails. Unarmed
  /// sites never fire. Thread-safe.
  bool ShouldFire(std::string_view site);

  /// Like ShouldFire, but also reports the site's configured delay_ms.
  bool ShouldFire(std::string_view site, int* delay_ms);

  /// Lifetime trigger count of a site (0 when never armed).
  uint64_t fires(std::string_view site) const;
  /// Lifetime hit count of a site (0 when never armed).
  uint64_t hits(std::string_view site) const;

 private:
  struct Site {
    SiteConfig config;
    uint64_t rng_state = 0;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  std::atomic<bool> enabled_{false};
  mutable Mutex mutex_;
  uint64_t seed_ HM_GUARDED_BY(mutex_) = 0;
  std::map<std::string, Site, std::less<>> sites_ HM_GUARDED_BY(mutex_);
};

/// The hot-path check: false (one relaxed load) unless a chaos harness
/// enabled the global injector AND armed this site AND its trigger fires.
inline bool ShouldFail(std::string_view site) {
  Injector& injector = Injector::Global();
  return injector.enabled() && injector.ShouldFire(site);
}

/// Sleeps the site's configured delay_ms when the site fires; no-op (one
/// relaxed load) otherwise. For stall-type sites on executable paths.
void MaybeDelay(std::string_view site);

}  // namespace hypermine::fault

#endif  // HYPERMINE_UTIL_FAULT_H_
