#include "util/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine::metrics {
namespace {

/// Splits "name{label=\"x\"}" into its base name; the full string stays
/// the sample identity, the base carries the HELP/TYPE block.
std::string_view BaseName(std::string_view full) {
  size_t brace = full.find('{');
  return brace == std::string_view::npos ? full : full.substr(0, brace);
}

/// Merges an extra label ("le=\"0.005\"") into a possibly-labeled metric
/// name: name -> name{extra}, name{a="b"} -> name{a="b",extra}.
std::string WithLabel(std::string_view full, const std::string& extra) {
  size_t brace = full.find('{');
  if (brace == std::string_view::npos) {
    return std::string(full) + "{" + extra + "}";
  }
  std::string merged(full.substr(0, full.size() - 1));  // drop '}'
  merged += "," + extra + "}";
  return merged;
}

/// Prometheus renders +Inf and exact values; printf %g keeps bounds like
/// 0.00025 readable without trailing zero noise.
std::string FormatBound(double bound) { return StrFormat("%g", bound); }

std::string FormatValue(double value) {
  // Counters and bucket counts are integers; sums are not.
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    return StrFormat("%.0f", value);
  }
  return StrFormat("%.9g", value);
}

void AddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::UpdateMax(int64_t value) {
  int64_t current = value_.load(std::memory_order_relaxed);
  while (current < value &&
         !value_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  HM_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    HM_CHECK_LT(bounds_[i - 1], bounds_[i]);
  }
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound is >= value (le is inclusive); past the
  // last finite bound, the +Inf slot.
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  AddDouble(&sum_, value);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snapshot.counts[i] = counts_[i].load(std::memory_order_relaxed);
    snapshot.count += snapshot.counts[i];
  }
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  return snapshot;
}

double Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  const double rank = p * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds.size()) return bounds.back();  // +Inf bucket clamps
    const double upper = bounds[i];
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    if (counts[i] == 0) return upper;
    const double into =
        (rank - static_cast<double>(cumulative - counts[i])) /
        static_cast<double>(counts[i]);
    return lower + (upper - lower) * std::clamp(into, 0.0, 1.0);
  }
  return bounds.back();
}

const std::vector<double>& DefaultLatencyBuckets() {
  static const std::vector<double> kBuckets = {
      0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
      0.01,    0.025,  0.05,    0.1,    0.25,  1.0,    2.5};
  return kBuckets;
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ == nullptr) return;
  histogram_->Observe(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count());
}

Registry::Entry* Registry::FindOrCreateLocked(std::string_view name,
                                              std::string_view help,
                                              Kind kind) {
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      HM_LOG_FATAL << "metric " << std::string(name)
                   << " re-registered as a different kind";
    }
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.help = std::string(help);
  it = entries_.emplace(std::string(name), std::move(entry)).first;
  return &it->second;
}

// The metric objects are created under mutex_ too: two threads racing the
// first GetCounter of one name must not both observe a null pointer and
// double-create (the old code mutated Entry outside the lock — exactly the
// class of bug the thread-safety annotations now reject at compile time).
// The returned pointer is stable and lock-free to use afterwards.

Counter* Registry::GetCounter(std::string_view name, std::string_view help) {
  MutexLock lock(mutex_);
  Entry* entry = FindOrCreateLocked(name, help, Kind::kCounter);
  if (entry->counter == nullptr) entry->counter = std::make_unique<Counter>();
  return entry->counter.get();
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view help) {
  MutexLock lock(mutex_);
  Entry* entry = FindOrCreateLocked(name, help, Kind::kGauge);
  if (entry->gauge == nullptr) entry->gauge = std::make_unique<Gauge>();
  return entry->gauge.get();
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  std::string_view help,
                                  const std::vector<double>& bounds) {
  MutexLock lock(mutex_);
  Entry* entry = FindOrCreateLocked(name, help, Kind::kHistogram);
  if (entry->histogram == nullptr) {
    entry->histogram = std::make_unique<Histogram>(bounds);
  } else if (entry->histogram->bounds() != bounds) {
    HM_LOG_FATAL << "histogram " << std::string(name)
                 << " re-registered with different buckets";
  }
  return entry->histogram.get();
}

uint64_t Registry::AddCollector(std::function<void()> collector) {
  MutexLock lock(collector_mutex_);
  uint64_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(collector));
  return id;
}

void Registry::RemoveCollector(uint64_t id) {
  MutexLock lock(collector_mutex_);
  collectors_.erase(id);
}

void Registry::RunCollectors() const {
  // Serialized: collectors may keep per-closure state (e.g. the previous
  // model-info gauge to zero out) and concurrent scrapes must not race it.
  // Lock order: collector_mutex_ before mutex_ — collectors call Get*.
  MutexLock lock(collector_mutex_);
  for (const auto& [id, collector] : collectors_) collector();
}

std::string Registry::PrometheusText() const {
  RunCollectors();
  std::string out;
  MutexLock lock(mutex_);
  std::string_view previous_base;
  for (const auto& [name, entry] : entries_) {
    const std::string_view base = BaseName(name);
    if (base != previous_base) {
      previous_base = base;
      if (!entry.help.empty()) {
        out += "# HELP " + std::string(base) + " " + entry.help + "\n";
      }
      const char* type = entry.kind == Kind::kCounter    ? "counter"
                         : entry.kind == Kind::kGauge    ? "gauge"
                                                         : "histogram";
      out += "# TYPE " + std::string(base) + " " + type + "\n";
    }
    switch (entry.kind) {
      case Kind::kCounter:
        out += name + " " +
               StrFormat("%llu",
                         static_cast<unsigned long long>(
                             entry.counter->value())) +
               "\n";
        break;
      case Kind::kGauge:
        out += name + " " +
               StrFormat("%lld",
                         static_cast<long long>(entry.gauge->value())) +
               "\n";
        break;
      case Kind::kHistogram: {
        const Histogram::Snapshot snapshot =
            entry.histogram->TakeSnapshot();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < snapshot.counts.size(); ++i) {
          cumulative += snapshot.counts[i];
          const std::string le =
              i < snapshot.bounds.size()
                  ? "le=\"" + FormatBound(snapshot.bounds[i]) + "\""
                  : std::string("le=\"+Inf\"");
          out += WithLabel(std::string(base) + "_bucket" +
                               std::string(name.substr(base.size())),
                           le) +
                 " " +
                 StrFormat("%llu",
                           static_cast<unsigned long long>(cumulative)) +
                 "\n";
        }
        out += std::string(base) + "_sum" +
               std::string(name.substr(base.size())) + " " +
               FormatValue(snapshot.sum) + "\n";
        out += std::string(base) + "_count" +
               std::string(name.substr(base.size())) + " " +
               StrFormat("%llu",
                         static_cast<unsigned long long>(snapshot.count)) +
               "\n";
        break;
      }
    }
  }
  return out;
}

std::string Registry::JsonText() const {
  RunCollectors();
  MutexLock lock(mutex_);
  std::string counters, gauges, histograms;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ", ";
        counters += "\"" + JsonEscape(name) + "\": " +
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          entry.counter->value()));
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ", ";
        gauges += "\"" + JsonEscape(name) + "\": " +
                  StrFormat("%lld",
                            static_cast<long long>(entry.gauge->value()));
        break;
      case Kind::kHistogram: {
        const Histogram::Snapshot snapshot =
            entry.histogram->TakeSnapshot();
        if (!histograms.empty()) histograms += ", ";
        histograms += StrFormat(
            "\"%s\": {\"count\": %llu, \"sum\": %.9g, \"p50\": %.9g, "
            "\"p90\": %.9g, \"p99\": %.9g}",
            JsonEscape(name).c_str(),
            static_cast<unsigned long long>(snapshot.count), snapshot.sum,
            snapshot.Percentile(0.50), snapshot.Percentile(0.90),
            snapshot.Percentile(0.99));
        break;
      }
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

Registry& DefaultRegistry() {
  static Registry* registry = [] {
    ProcessUptimeSeconds();  // anchor the uptime clock early
    return new Registry();
  }();
  return *registry;
}

double ProcessUptimeSeconds() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace hypermine::metrics
