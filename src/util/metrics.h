#ifndef HYPERMINE_UTIL_METRICS_H_
#define HYPERMINE_UTIL_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace hypermine::metrics {

/// Process-wide observability primitives (docs/observability.md): named
/// counters, gauges, and fixed-bucket latency histograms collected in a
/// Registry and rendered as Prometheus text (/metrics) or JSON (/statusz,
/// `!stats`). Hot-path updates are single relaxed atomic operations — no
/// locks, no allocation — so instrumenting the serving path costs almost
/// nothing; all aggregation happens at scrape time (snapshot-on-scrape).
///
/// Naming convention: `hypermine_<subsystem>_<what>[_total|_seconds]`,
/// optionally with a Prometheus label suffix baked into the name, e.g.
/// `GetCounter("hypermine_model_swaps_total{to_version=\"7\"}")`. The
/// registry treats the full string as the metric identity; the renderer
/// groups series sharing a base name under one HELP/TYPE block.

/// Monotonic event count. Increment is the hot-path operation; BridgeTo
/// overwrites the value wholesale and exists ONLY for scrape-time bridging
/// of counters owned elsewhere (api::CacheStats, a ServerStats field) into
/// the registry — never mix Increment and BridgeTo on one counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void BridgeTo(uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (queue depth, open connections,
/// model version). UpdateMax keeps a high-water mark.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Raises the gauge to `value` if it is below it (lock-free CAS loop).
  void UpdateMax(int64_t value);
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are strictly increasing inclusive
/// upper bounds (Prometheus `le` semantics); an implicit +Inf bucket
/// catches everything above the last bound. Observe is two relaxed atomic
/// adds (bucket count + sum); p50/p90/p99 are derived from the buckets at
/// scrape time by linear interpolation, never tracked online.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  /// Point-in-time copy of the bucket state: later Observe calls do not
  /// alter a snapshot already taken.
  struct Snapshot {
    /// Finite upper bounds; counts has one extra trailing +Inf slot.
    std::vector<double> bounds;
    /// Per-bucket (non-cumulative) observation counts.
    std::vector<uint64_t> counts;
    uint64_t count = 0;
    double sum = 0.0;

    /// Bucket-derived quantile (p in [0,1]): linear interpolation inside
    /// the bucket holding the p-th observation. Observations in the +Inf
    /// bucket clamp to the last finite bound; 0 when empty.
    double Percentile(double p) const;
  };
  Snapshot TakeSnapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  /// bounds_.size() + 1 slots; the last is the +Inf bucket.
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<double> sum_{0.0};
};

/// Default latency bucket layout, in SECONDS (Prometheus convention for
/// *_seconds histograms): 14 exponential-ish bounds from 50 µs to 2.5 s.
/// Chosen so loopback-serving stage latencies (tens of µs to tens of ms)
/// land mid-range with resolution on both sides.
const std::vector<double>& DefaultLatencyBuckets();

/// Observes the construction-to-destruction wall time (seconds, steady
/// clock) into a histogram. A null histogram makes it a no-op, so call
/// sites can keep one unconditional timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {}
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// Owns every metric and renders them. Get* registers on first use and
/// returns the same stable pointer forever after (metrics are never
/// removed); the returned objects are safe to update from any thread.
/// Re-registering a name with a different kind (or a histogram with
/// different bounds) aborts — one name, one meaning.
///
/// Collectors are callbacks run (serialized, under a lock) at the start of
/// every render: the place to bridge externally-owned stats (engine cache
/// counters, current queue depth) into registry metrics right before they
/// are read. AddCollector returns an id for RemoveCollector — an embedder
/// with a shorter lifetime than the registry (e.g. net::Server on the
/// default registry) must deregister before dying.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(std::string_view name, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "");
  Histogram* GetHistogram(std::string_view name, std::string_view help = "",
                          const std::vector<double>& bounds =
                              DefaultLatencyBuckets());

  uint64_t AddCollector(std::function<void()> collector);
  void RemoveCollector(uint64_t id);

  /// Prometheus text exposition format 0.0.4 (the /metrics payload).
  std::string PrometheusText() const;
  /// The same metrics as a JSON object: {"counters": {...}, "gauges":
  /// {...}, "histograms": {name: {count, sum, p50, p90, p99}}}. Histogram
  /// sums/percentiles are reported in milliseconds-friendly raw units —
  /// whatever unit was observed.
  std::string JsonText() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Finds or inserts the entry for `name`, checking kind consistency.
  /// Returns a pointer that stays valid forever (map nodes are stable and
  /// entries are never removed), which is what lets Get* hand out raw
  /// metric pointers that outlive the lock.
  Entry* FindOrCreateLocked(std::string_view name, std::string_view help,
                            Kind kind) HM_REQUIRES(mutex_);
  void RunCollectors() const HM_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  /// Ordered so same-base-name label variants render adjacently.
  std::map<std::string, Entry, std::less<>> entries_ HM_GUARDED_BY(mutex_);
  /// Serializes collector registration AND execution; always acquired
  /// before mutex_ (collectors call Get* themselves).
  mutable Mutex collector_mutex_ HM_ACQUIRED_BEFORE(mutex_);
  std::map<uint64_t, std::function<void()>> collectors_
      HM_GUARDED_BY(collector_mutex_);
  uint64_t next_collector_id_ HM_GUARDED_BY(collector_mutex_) = 1;
};

/// The process-wide registry every subsystem publishes into by default.
Registry& DefaultRegistry();

/// Seconds since this process first touched the metrics layer (steady
/// clock; effectively process start for any binary that serves).
double ProcessUptimeSeconds();

/// Minimal JSON string escaping (quotes, backslashes, control bytes) for
/// embedding metric names and model metadata into /statusz documents.
std::string JsonEscape(std::string_view text);

}  // namespace hypermine::metrics

#endif  // HYPERMINE_UTIL_METRICS_H_
