#ifndef HYPERMINE_UTIL_CSV_H_
#define HYPERMINE_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace hypermine {

/// A parsed CSV document: optional header row plus data rows. Quoted fields
/// (RFC-4180 style double quotes, with "" escaping) are supported.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text. When `has_header` is true the first record becomes
/// `header`. Rejects documents whose rows have inconsistent field counts.
StatusOr<CsvDocument> ParseCsv(const std::string& text, bool has_header);

/// Reads and parses a CSV file.
StatusOr<CsvDocument> ReadCsvFile(const std::string& path, bool has_header);

/// Serializes rows (with optional header) to CSV, quoting fields that
/// contain separators, quotes, or newlines.
std::string WriteCsvString(const CsvDocument& doc);

/// Writes a CSV file; creates/truncates the target.
Status WriteCsvFile(const std::string& path, const CsvDocument& doc);

/// Reads an entire file into a string.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file (truncating).
Status WriteStringToFile(const std::string& path, const std::string& text);

}  // namespace hypermine

#endif  // HYPERMINE_UTIL_CSV_H_
