#include "util/flags.h"

#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine {

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    std::string name;
    std::string value;
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      // "--flag value" form: consume the next token when it is not a flag.
      if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (name.empty()) {
      return Status::InvalidArgument("malformed flag: " + arg);
    }
    values_[name] = value;
  }
  return Status::OK();
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  int64_t out = 0;
  if (!ParseInt64(it->second, &out)) {
    HM_LOG_FATAL << "flag --" << name << " is not an integer: " << it->second;
  }
  return out;
}

double FlagParser::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  double out = 0.0;
  if (!ParseDouble(it->second, &out)) {
    HM_LOG_FATAL << "flag --" << name << " is not a number: " << it->second;
  }
  return out;
}

bool FlagParser::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::string v = ToLower(it->second);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::string FlagParser::DebugString() const {
  std::ostringstream os;
  for (const auto& [name, value] : values_) {
    os << "--" << name << "=" << value << "\n";
  }
  return os.str();
}

}  // namespace hypermine
