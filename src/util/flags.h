#ifndef HYPERMINE_UTIL_FLAGS_H_
#define HYPERMINE_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace hypermine {

/// Minimal command-line flag parser for the benchmark and example binaries.
/// Accepts "--name=value", "--name value", and bare "--name" (boolean true).
/// Anything not starting with "--" is collected as a positional argument.
class FlagParser {
 public:
  /// Parses argv; fails on malformed flags (e.g. "--=x").
  Status Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  /// Typed getters returning `fallback` when the flag is absent. GetInt /
  /// GetDouble abort when the flag is present but unparsable — a misspelled
  /// experiment parameter must not silently run a different experiment.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Formats known flags for --help output.
  std::string DebugString() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace hypermine

#endif  // HYPERMINE_UTIL_FLAGS_H_
