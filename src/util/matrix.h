#ifndef HYPERMINE_UTIL_MATRIX_H_
#define HYPERMINE_UTIL_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace hypermine {

/// Dense row-major matrix of doubles. Sized for the small linear-algebra
/// needs of the ML baselines (normal equations, MLP weight blocks), not for
/// large-scale numerics.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  static Matrix Identity(size_t n);
  /// Builds from nested initializer data; all rows must be equally long.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& At(size_t r, size_t c);
  double At(size_t r, size_t c) const;
  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  /// Raw pointer to row `r` (contiguous `cols()` doubles).
  double* RowPtr(size_t r);
  const double* RowPtr(size_t r) const;

  Matrix Transposed() const;
  Matrix Multiply(const Matrix& other) const;
  /// Matrix-vector product; `v.size()` must equal cols().
  std::vector<double> Apply(const std::vector<double>& v) const;

  Matrix& AddInPlace(const Matrix& other);
  Matrix& ScaleInPlace(double factor);

  /// Frobenius norm.
  double Norm() const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string ToString(int precision = 4) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting. A must be
/// square with rows() == b.size(). Fails with kFailedPrecondition when A is
/// (numerically) singular.
StatusOr<std::vector<double>> SolveLinearSystem(Matrix a,
                                                std::vector<double> b);

/// Solves the least-squares problem min ||X w - y||^2 through the normal
/// equations (X^T X + ridge I) w = X^T y. `ridge` = 0 gives plain OLS; a tiny
/// positive ridge keeps rank-deficient one-hot designs solvable.
StatusOr<std::vector<double>> SolveLeastSquares(const Matrix& x,
                                                const std::vector<double>& y,
                                                double ridge = 0.0);

}  // namespace hypermine

#endif  // HYPERMINE_UTIL_MATRIX_H_
