#ifndef HYPERMINE_UTIL_RNG_H_
#define HYPERMINE_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hypermine {

/// Deterministic, platform-independent pseudo-random generator
/// (xoshiro256** seeded via SplitMix64). The standard library distributions
/// are not used because their output is implementation-defined; experiments
/// must reproduce bit-identically across compilers.
class Rng {
 public:
  /// Seeds the four-word state from `seed` using SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) using Lemire rejection; bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal deviate via Box–Muller (deterministic, no cache
  /// across calls so interleaved usage stays reproducible).
  double NextGaussian();

  /// Normal deviate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) in random order.
  /// If count >= n, returns a permutation of all n indices.
  std::vector<size_t> SampleIndices(size_t n, size_t count);

  /// Draws an index according to non-negative weights (linear scan).
  /// Returns weights.size() - 1 if all weights are zero.
  size_t NextWeighted(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
};

}  // namespace hypermine

#endif  // HYPERMINE_UTIL_RNG_H_
