#ifndef HYPERMINE_UTIL_LOGGING_H_
#define HYPERMINE_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

namespace hypermine {
namespace internal_logging {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Minimum severity that is actually emitted; defaults to kInfo. Benches set
/// this to kWarning to keep table output clean; `hypermine_serve
/// --log-level=...` sets it at startup. Thread-safe (atomic), so it can be
/// flipped at runtime under live traffic.
LogSeverity GetMinLogSeverity();
void SetMinLogSeverity(LogSeverity severity);

/// Maps "info" / "warning" / "error" (case-insensitive; "warn" accepted)
/// to a severity; false on anything else. kFatal is not settable — fatal
/// messages are always emitted anyway.
bool ParseLogSeverity(std::string_view name, LogSeverity* out);

/// Seconds since the process first logged (steady clock) — the number in
/// every message prefix, exposed for tests and for correlating log lines
/// with metric timestamps.
double MonotonicLogSeconds();

/// Stream-style log message that emits on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Swallows a streamed expression; used for disabled log levels.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define HM_LOG_INFO                                        \
  ::hypermine::internal_logging::LogMessage(               \
      ::hypermine::internal_logging::LogSeverity::kInfo,   \
      __FILE__, __LINE__)
#define HM_LOG_WARNING                                      \
  ::hypermine::internal_logging::LogMessage(                \
      ::hypermine::internal_logging::LogSeverity::kWarning, \
      __FILE__, __LINE__)
#define HM_LOG_ERROR                                       \
  ::hypermine::internal_logging::LogMessage(               \
      ::hypermine::internal_logging::LogSeverity::kError,  \
      __FILE__, __LINE__)
#define HM_LOG_FATAL                                       \
  ::hypermine::internal_logging::LogMessage(               \
      ::hypermine::internal_logging::LogSeverity::kFatal,  \
      __FILE__, __LINE__)

/// Aborts with a message when an invariant does not hold. CHECKs stay enabled
/// in release builds: a violated invariant in mining code silently corrupts
/// results otherwise.
#define HM_CHECK(cond)                                          \
  (cond) ? (void)0                                              \
         : (void)(HM_LOG_FATAL << "Check failed: " #cond " ")

#define HM_CHECK_OP_(a, b, op)                                            \
  ((a)op(b)) ? (void)0                                                    \
             : (void)(HM_LOG_FATAL << "Check failed: " #a " " #op " " #b \
                                   << " (" << (a) << " vs " << (b) << ") ")

#define HM_CHECK_EQ(a, b) HM_CHECK_OP_(a, b, ==)
#define HM_CHECK_NE(a, b) HM_CHECK_OP_(a, b, !=)
#define HM_CHECK_LT(a, b) HM_CHECK_OP_(a, b, <)
#define HM_CHECK_LE(a, b) HM_CHECK_OP_(a, b, <=)
#define HM_CHECK_GT(a, b) HM_CHECK_OP_(a, b, >)
#define HM_CHECK_GE(a, b) HM_CHECK_OP_(a, b, >=)

/// Aborts if a Status-returning expression fails.
#define HM_CHECK_OK(expr)                                            \
  do {                                                               \
    ::hypermine::Status hm_check_status = (expr);                    \
    if (!hm_check_status.ok()) {                                     \
      HM_LOG_FATAL << "Status not OK: " << hm_check_status.ToString(); \
    }                                                                \
  } while (false)

}  // namespace hypermine

#endif  // HYPERMINE_UTIL_LOGGING_H_
