#ifndef HYPERMINE_UTIL_STOPWATCH_H_
#define HYPERMINE_UTIL_STOPWATCH_H_

#include <chrono>

namespace hypermine {

/// Wall-clock stopwatch for coarse harness timing (benchmark binaries report
/// fine-grained numbers through google-benchmark instead).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hypermine

#endif  // HYPERMINE_UTIL_STOPWATCH_H_
