#ifndef HYPERMINE_UTIL_TABLE_PRINTER_H_
#define HYPERMINE_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace hypermine {

/// Renders aligned ASCII tables for the experiment harnesses, matching the
/// row/column layout of the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  /// Adds a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Inserts a horizontal separator after the current last row.
  void AddSeparator();

  /// Full rendering, including the header and a frame of '-' and '|'.
  std::string ToString() const;

  size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

}  // namespace hypermine

#endif  // HYPERMINE_UTIL_TABLE_PRINTER_H_
