#ifndef HYPERMINE_UTIL_THREAD_ANNOTATIONS_H_
#define HYPERMINE_UTIL_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attribute macros (docs/static_analysis.md).
///
/// These let the locking discipline of every concurrent type in the project
/// be stated in the source and machine-checked at compile time:
///
///   util::Mutex mutex_;
///   std::vector<Task> pending_ HM_GUARDED_BY(mutex_);
///   void Drain() HM_REQUIRES(mutex_);
///
/// Under Clang, `-Wthread-safety` (and the HYPERMINE_WERROR_THREAD_SAFETY
/// CMake option, which promotes it to an error) rejects any access to
/// `pending_` without `mutex_` held and any call to `Drain()` from a
/// context that cannot prove it holds the lock. Under other compilers every
/// macro expands to nothing, so annotated code stays portable.
///
/// The same attribute set also expresses non-mutex capabilities: the
/// reactor-affinity capability on net::EventLoop marks methods that must
/// only run on the loop thread (HM_ASSERT_CAPABILITY on
/// AssertOnLoopThread(), HM_REQUIRES(loop_) on reactor-only methods).
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && (!defined(SWIG))
#define HM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define HM_THREAD_ANNOTATION_(x)  // no-op on non-Clang compilers
#endif

/// Declares a class to be a capability (lockable) type. `x` is the name the
/// analysis uses in diagnostics, e.g. HM_CAPABILITY("mutex").
#define HM_CAPABILITY(x) HM_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability
/// (e.g. util::MutexLock).
#define HM_SCOPED_CAPABILITY HM_THREAD_ANNOTATION_(scoped_lockable)

/// The annotated member may only be accessed while holding the given
/// capability.
#define HM_GUARDED_BY(x) HM_THREAD_ANNOTATION_(guarded_by(x))

/// The data pointed to by the annotated pointer member may only be accessed
/// while holding the given capability (the pointer itself is unguarded).
#define HM_PT_GUARDED_BY(x) HM_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The annotated capability must be acquired before / after the listed ones
/// (lock-ordering, deadlock detection).
#define HM_ACQUIRED_BEFORE(...) \
  HM_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define HM_ACQUIRED_AFTER(...) \
  HM_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// The annotated function requires the capabilities to be held on entry
/// (and does not release them).
#define HM_REQUIRES(...) \
  HM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define HM_REQUIRES_SHARED(...) \
  HM_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires the capability and holds it on return.
#define HM_ACQUIRE(...) \
  HM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define HM_ACQUIRE_SHARED(...) \
  HM_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The annotated function releases the capability (held on entry).
#define HM_RELEASE(...) \
  HM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define HM_RELEASE_SHARED(...) \
  HM_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The annotated function must NOT be called with the capability held
/// (it acquires it itself; a caller already holding it would deadlock).
#define HM_EXCLUDES(...) HM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The annotated function dynamically checks that the capability is held
/// and aborts otherwise; the analysis treats it as held afterwards. Used by
/// Mutex::AssertHeld() and EventLoop::AssertOnLoopThread().
#define HM_ASSERT_CAPABILITY(x) \
  HM_THREAD_ANNOTATION_(assert_capability(x))
#define HM_ASSERT_SHARED_CAPABILITY(x) \
  HM_THREAD_ANNOTATION_(assert_shared_capability(x))

/// The annotated function returns a reference to the given capability.
#define HM_RETURN_CAPABILITY(x) HM_THREAD_ANNOTATION_(lock_returned(x))

/// The annotated function tries to acquire the capability and reports
/// success as the given boolean return value.
#define HM_TRY_ACQUIRE(...) \
  HM_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Escape hatch: the analysis skips this function entirely. Every use MUST
/// carry a one-line comment justifying why the analysis cannot see the
/// invariant (enforced by tools/lint_invariants.py).
#define HM_NO_THREAD_SAFETY_ANALYSIS \
  HM_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // HYPERMINE_UTIL_THREAD_ANNOTATIONS_H_
