#include "util/logging.h"

#include <atomic>

namespace hypermine {
namespace internal_logging {

namespace {
std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

LogSeverity GetMinLogSeverity() {
  return static_cast<LogSeverity>(g_min_severity.load());
}

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity));
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= GetMinLogSeverity() ||
      severity_ == LogSeverity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace hypermine
