#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace hypermine {
namespace internal_logging {

namespace {
std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};

/// Anchored on first use (function-local static: safe across threads and
/// before main), so timestamps are monotonic and immune to wall-clock
/// jumps — two log lines N seconds apart always differ by N.
std::chrono::steady_clock::time_point LogEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

LogSeverity GetMinLogSeverity() {
  return static_cast<LogSeverity>(g_min_severity.load());
}

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity));
}

bool ParseLogSeverity(std::string_view name, LogSeverity* out) {
  std::string lower(name);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c += 'a' - 'A';
  }
  if (lower == "info") {
    *out = LogSeverity::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *out = LogSeverity::kWarning;
  } else if (lower == "error") {
    *out = LogSeverity::kError;
  } else {
    return false;
  }
  return true;
}

double MonotonicLogSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       LogEpoch())
      .count();
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  char uptime[32];
  std::snprintf(uptime, sizeof(uptime), "%.3f", MonotonicLogSeconds());
  stream_ << "[" << SeverityTag(severity) << " " << uptime << "s " << file
          << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= GetMinLogSeverity() ||
      severity_ == LogSeverity::kFatal) {
    // Emit the whole line with one fwrite: concurrent log statements may
    // interleave whole lines but never characters within a line (a
    // two-part `cerr << str << endl` gives no such guarantee).
    stream_ << '\n';
    const std::string line = stream_.str();
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace hypermine
