#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/logging.h"

namespace hypermine {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(&sm);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  HM_CHECK_GT(bound, 0u);
  // Lemire's multiply-shift with rejection to remove modulo bias.
  uint64_t threshold = (-bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    __uint128_t m = static_cast<__uint128_t>(r) * bound;
    if (static_cast<uint64_t>(m) >= threshold) {
      return static_cast<uint64_t>(m >> 64);
    }
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  HM_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextGaussian() {
  // Box–Muller; draws until u1 is nonzero so log() stays finite.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t count) {
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  Shuffle(&all);
  if (count < n) all.resize(count);
  return all;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  HM_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    HM_CHECK_GE(w, 0.0);
    total += w;
  }
  if (total <= 0.0) return weights.size() - 1;
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace hypermine
