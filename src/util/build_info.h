#ifndef HYPERMINE_UTIL_BUILD_INFO_H_
#define HYPERMINE_UTIL_BUILD_INFO_H_

namespace hypermine {

/// Compile-time provenance: the root CMakeLists stamps HYPERMINE_GIT_SHA
/// (configure-time `git rev-parse`) and HYPERMINE_BUILD_TYPE onto the
/// hypermine library, so models (api::ModelProvenance) and perf artifacts
/// (BENCH_*.json) are attributable to a commit and an optimization level.
/// Configure-time, so a stale build dir can lag HEAD by design.

inline const char* GitSha() {
#ifdef HYPERMINE_GIT_SHA
  return HYPERMINE_GIT_SHA;
#else
  return "unknown";
#endif
}

inline const char* BuildType() {
#ifdef HYPERMINE_BUILD_TYPE
  return HYPERMINE_BUILD_TYPE;
#else
  return "unknown";
#endif
}

}  // namespace hypermine

#endif  // HYPERMINE_UTIL_BUILD_INFO_H_
