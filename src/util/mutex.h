#ifndef HYPERMINE_UTIL_MUTEX_H_
#define HYPERMINE_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace hypermine {

/// Annotated wrapper over std::mutex: the capability type Clang's thread
/// safety analysis reasons about (docs/static_analysis.md). Every
/// mutex-guarded member in the project is declared against one of these via
/// HM_GUARDED_BY, so "state read outside its lock" is a compile error under
/// `-Wthread-safety` instead of a TSan finding on whichever interleaving a
/// test happened to hit.
///
/// Prefer MutexLock for scoped acquisition; Lock/Unlock exist for the rare
/// split-scope pattern and for CondVar's internals.
class HM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HM_ACQUIRE() { mutex_.lock(); }
  void Unlock() HM_RELEASE() { mutex_.unlock(); }

  /// Documents (to the analysis, not at runtime — std::mutex cannot answer
  /// "does this thread hold me") that the caller holds this mutex. Use at
  /// the top of helpers reached only from locked contexts the analysis
  /// cannot follow, e.g. through a std::function boundary.
  void AssertHeld() const HM_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII lock for util::Mutex, annotated so the analysis tracks the
/// capability for exactly the scope of the object (HM_SCOPED_CAPABILITY).
class HM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) HM_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() HM_RELEASE() { mutex_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with util::Mutex. Wait requires the mutex held
/// (HM_REQUIRES) and returns with it held again, which is exactly what the
/// analysis needs to keep tracking guarded members across the wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks until notified, reacquires.
  void Wait(Mutex& mutex) HM_REQUIRES(mutex);

  /// Waits until `predicate()` holds (checked with `mutex` held, so the
  /// predicate may touch HM_GUARDED_BY(mutex) members freely).
  template <typename Predicate>
  void Wait(Mutex& mutex, Predicate predicate) HM_REQUIRES(mutex) {
    while (!predicate()) Wait(mutex);
  }

  /// Timed wait; false when `timeout` elapsed without a notification.
  bool WaitFor(Mutex& mutex, std::chrono::milliseconds timeout)
      HM_REQUIRES(mutex);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hypermine

#endif  // HYPERMINE_UTIL_MUTEX_H_
