#ifndef HYPERMINE_API_ENGINE_H_
#define HYPERMINE_API_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/model.h"
#include "serve/rule_index.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace hypermine::api {

/// Largest item set a single query may name. TopKWithin enumerates tail
/// subsets of size 1..3, so work grows as C(n, 3); the cap bounds one
/// query to ~40k group lookups and keeps a hostile request from pinning a
/// serving worker.
inline constexpr size_t kMaxQueryItems = 64;

/// One association query: "given these items, what follows?". Items may be
/// given by vertex name (resolved against the live model at answer time —
/// the robust form across hot swaps, since vertex ids are per-model) or by
/// id (`items`, used only when `names` is empty).
struct QueryRequest {
  std::vector<std::string> names;
  std::vector<core::VertexId> items;
  size_t k = 10;
  /// kTopK ranks consequents of tail subsets of the item set by ACV;
  /// kReachable computes the forward closure under min_acv
  /// (B-reachability).
  enum class Kind { kTopK, kReachable } kind = Kind::kTopK;
  /// Only used by kReachable.
  double min_acv = 0.0;
};

/// A successful answer. `model_version` is the version() of the model that
/// produced it — across a Swap, callers can tell old answers from new.
struct QueryResponse {
  /// kTopK answers (best ACV first).
  std::vector<serve::RankedConsequent> ranked;
  /// kReachable answer (sorted vertex ids, includes the seeds).
  std::vector<core::VertexId> closure;
  uint64_t model_version = 0;
  /// True when served from the engine's result cache.
  bool from_cache = false;
};

/// Tuning knobs for an Engine; the defaults serve correctly out of the
/// box. All fields are read once at construction.
struct EngineOptions {
  /// Worker threads; 0 = hardware concurrency (at least 1). Ignored when
  /// `pool` is set.
  size_t num_threads = 0;
  /// LRU result-cache capacity in entries (total across all shards); 0
  /// disables caching.
  size_t cache_capacity = 4096;
  /// Independently-locked cache shards; a query locks only the shard its
  /// key hashes to, so concurrent lookups on different shards never
  /// contend. 0 = auto: min(8, max(1, cache_capacity / 64)) — small
  /// caches stay single-shard, because sharding is an eviction-precision
  /// trade. LRU eviction is per shard (each shard evicts within its own
  /// capacity slice, so the global eviction order is only approximately
  /// LRU), and the approximation is worst exactly when shards are tiny;
  /// auto only shards once every shard holds at least 64 entries. An
  /// explicit request is honored after clamping to cache_capacity, so
  /// every shard holds at least one entry.
  size_t cache_shards = 0;
  /// Optional caller-provided worker pool shared with other subsystems
  /// (e.g. the model builder). Not owned; must outlive the engine.
  ThreadPool* pool = nullptr;
};

/// Lifetime counters of the engine's result cache (monotonic; a Swap
/// purges entries but never resets the counters). cache_stats() sums the
/// per-shard counters; cache_shard_stats() exposes them individually.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

/// The serving half of the API: answers association queries against a hot-
/// swappable, immutable Model. One Engine owns a worker pool (or borrows a
/// shared one), a sharded LRU result cache (key-hash picks the shard, each
/// shard has its own lock — no query ever takes a global cache lock), and
/// a shared_ptr<const Model> slot.
///
/// Hot swap: Swap(new_model) atomically replaces the slot. Queries acquire
/// the model pointer once per batch, so in-flight batches finish against
/// the model they started with (kept alive by their shared_ptr) while
/// every batch submitted after Swap returns sees only the new model — no
/// drain, no downtime. The cache key leads with the model version, so a
/// swap coherently invalidates: entries computed against an old model can
/// never answer for the new one (Swap also purges them eagerly).
class Engine {
 public:
  /// `model` must be non-null.
  explicit Engine(std::shared_ptr<const Model> model,
                  EngineOptions options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Atomically replaces the served model (non-null). In-flight batches
  /// complete against the previous model; subsequent queries see only
  /// `model`.
  void Swap(std::shared_ptr<const Model> model);

  /// The currently served model.
  std::shared_ptr<const Model> model() const;

  /// Answers a batch; result i corresponds to requests[i], each with its
  /// own StatusOr (one malformed query does not fail the batch).
  /// Thread-safe — concurrent batches interleave on the same pool. All
  /// answers within one batch come from the same model; when `model_out`
  /// is non-null it receives exactly that model, so a caller that must
  /// post-process answers (e.g. resolve vertex ids to names for the wire)
  /// can do so against the right graph even while Swap races the batch —
  /// re-reading model() after the call could observe a newer model.
  std::vector<StatusOr<QueryResponse>> QueryBatch(
      const std::vector<QueryRequest>& requests,
      std::shared_ptr<const Model>* model_out = nullptr);

  /// Answers one query on the calling thread (no pool round trip).
  /// `model_out` has QueryBatch semantics: the model that answered.
  StatusOr<QueryResponse> Query(
      const QueryRequest& request,
      std::shared_ptr<const Model>* model_out = nullptr);

  /// Workers in the (owned or shared) query pool.
  size_t num_threads() const { return pool_->num_threads(); }
  /// Snapshot of the result-cache counters, summed across shards.
  /// Thread-safe.
  CacheStats cache_stats() const;
  /// Per-shard counter snapshots, index = shard. Thread-safe. The shard
  /// snapshots are taken one lock at a time, so the vector is not a
  /// single atomic cut — each shard's triple is internally consistent.
  std::vector<CacheStats> cache_shard_stats() const;
  /// Cache shards actually in use (0 when caching is disabled).
  size_t cache_shards() const { return shards_.size(); }
  /// Entries currently cached, summed across shards. Thread-safe.
  size_t cache_entries() const;
  /// Lifetime count of Swap() calls (monotonic, thread-safe) — the
  /// observability layer bridges it into `hypermine_model_swaps_total`.
  uint64_t swap_count() const {
    return swap_count_.load(std::memory_order_relaxed);
  }

 private:
  struct CacheEntry {
    std::string key;
    uint64_t model_version = 0;
    QueryResponse response;
  };

  /// One independently-locked slice of the result cache. LRU list front =
  /// most recent; map points into the list. `capacity` is this shard's
  /// slice of EngineOptions::cache_capacity (immutable after
  /// construction).
  struct CacheShard {
    mutable Mutex mutex;
    std::list<CacheEntry> lru HM_GUARDED_BY(mutex);
    std::unordered_map<std::string, std::list<CacheEntry>::iterator> map
        HM_GUARDED_BY(mutex);
    CacheStats stats HM_GUARDED_BY(mutex);
    size_t capacity = 0;
  };

  /// The shard `key` hashes to. Never called with an empty shard vector
  /// (callers gate on cache_capacity_ > 0).
  CacheShard& ShardFor(const std::string& key) const;

  StatusOr<QueryResponse> Process(const Model& model,
                                  const QueryRequest& request);
  /// Canonical cache key (leads with the model version). Only called on
  /// validated queries — `items` is the resolved, non-empty item set.
  static std::string CacheKey(uint64_t model_version,
                              const QueryRequest& request,
                              const std::vector<core::VertexId>& items);

  mutable Mutex model_mutex_;
  std::shared_ptr<const Model> model_ HM_GUARDED_BY(model_mutex_);
  std::atomic<uint64_t> swap_count_{0};

  /// Immutable after construction, so the cache-enabled check on the query
  /// hot path needs no lock.
  const size_t cache_capacity_;
  /// The shards themselves (empty iff cache_capacity_ == 0). unique_ptr
  /// keeps each shard's Mutex at a stable address; the vector itself is
  /// immutable after construction, so indexing it is lock-free.
  std::vector<std::unique_ptr<CacheShard>> shards_;

  /// Owned pool when options.pool was null. MUST be declared after the
  /// cache state: ~ThreadPool drains in-flight chunks, which still call
  /// Process() against the members above, so the pool has to die (and
  /// join) first.
  std::unique_ptr<ThreadPool> owned_pool_;
  /// Points at owned_pool_ or the caller's shared pool.
  ThreadPool* pool_ = nullptr;
};

/// What ReloadEngineFromFile did, for logging and counters.
struct ReloadReport {
  /// OK iff the engine is now serving the new model. A non-OK status with
  /// rolled_back=false means the new model never went live (load or
  /// pre-swap verification failed); with rolled_back=true it went live,
  /// failed the post-swap probe, and the previous model was restored.
  Status status;
  uint64_t old_version = 0;
  /// 0 when the snapshot never produced a model.
  uint64_t new_version = 0;
  bool rolled_back = false;
};

/// Zero-downtime reload with verify-then-swap and automatic rollback:
/// loads `path`, verifies the model can actually serve (forces the lazy
/// index, probes a query) BEFORE swapping it in, swaps, then re-probes
/// through the engine and swaps the old model back if that fails. A
/// corrupt or truncated snapshot therefore never interrupts serving: the
/// worst case is a non-OK report while the old model keeps answering.
///
/// Blocking (snapshot IO + index build) — call it from a worker, never
/// from a reactor or UI thread. Concurrent reloads of one engine must be
/// serialized by the caller (a lost race could roll back the wrong
/// model); hypermine_serve uses a single-threaded reload pool.
ReloadReport ReloadEngineFromFile(Engine* engine, const std::string& path);

}  // namespace hypermine::api

#endif  // HYPERMINE_API_ENGINE_H_
