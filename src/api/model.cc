#include "api/model.h"

#include <atomic>
#include <ctime>
#include <utility>

#include "core/export.h"
#include "serve/snapshot.h"
#include "util/build_info.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine::api {

namespace {

/// Process-unique model versions. Starts at 1 so 0 can mean "no model yet"
/// in caller-side bookkeeping.
uint64_t NextVersion() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Model::Model(std::optional<core::DirectedHypergraph> graph, ModelSpec spec,
             core::BuildStats stats, std::optional<serve::RuleIndex> index)
    : graph_(std::move(graph)),
      stats_(stats),
      spec_(std::move(spec)),
      version_(NextVersion()),
      index_(std::move(index)) {}

StatusOr<std::shared_ptr<const Model>> Model::Build(const core::Database& db,
                                                    ModelSpec spec,
                                                    ThreadPool* pool) {
  if (spec.provenance.git_sha.empty()) {
    spec.provenance.git_sha = GitSha();
  }
  if (spec.provenance.created_unix == 0) {
    spec.provenance.created_unix =
        static_cast<uint64_t>(std::time(nullptr));
  }
  core::BuildStats stats;
  HM_ASSIGN_OR_RETURN(
      core::DirectedHypergraph graph,
      core::BuildAssociationHypergraph(db, spec.config, &stats, pool));
  return std::shared_ptr<const Model>(
      new Model(std::move(graph), std::move(spec), stats, std::nullopt));
}

StatusOr<std::shared_ptr<const Model>> Model::FromSnapshot(
    const std::string& path) {
  HM_ASSIGN_OR_RETURN(serve::LoadedSnapshot loaded,
                      serve::ReadSnapshotFull(path));
  return std::shared_ptr<const Model>(
      new Model(std::move(loaded.graph), std::move(loaded.spec),
                core::BuildStats{}, std::nullopt));
}

StatusOr<std::shared_ptr<const Model>> Model::FromFile(
    const std::string& path) {
  HM_ASSIGN_OR_RETURN(serve::LoadedSnapshot loaded,
                      serve::LoadModelFile(path));
  return std::shared_ptr<const Model>(
      new Model(std::move(loaded.graph), std::move(loaded.spec),
                core::BuildStats{}, std::nullopt));
}

std::shared_ptr<const Model> Model::FromGraph(core::DirectedHypergraph graph,
                                              ModelSpec spec,
                                              core::BuildStats stats) {
  return std::shared_ptr<const Model>(
      new Model(std::move(graph), std::move(spec), stats, std::nullopt));
}

std::shared_ptr<const Model> Model::FromIndex(serve::RuleIndex index) {
  return std::shared_ptr<const Model>(new Model(
      std::nullopt, ModelSpec{}, core::BuildStats{}, std::move(index)));
}

Status Model::SaveSnapshot(const std::string& path) const {
  if (!has_graph()) {
    return Status::FailedPrecondition(
        "model: index-only models (deprecated shim path) cannot be "
        "snapshotted");
  }
  return serve::WriteSnapshot(*graph_, spec_, path);
}

Status Model::ExportCsv(const std::string& path) const {
  if (!has_graph()) {
    return Status::FailedPrecondition(
        "model: index-only models (deprecated shim path) cannot be "
        "exported");
  }
  return core::WriteHypergraphCsv(*graph_, path);
}

const core::DirectedHypergraph& Model::graph() const {
  HM_CHECK(graph_.has_value());
  return *graph_;
}

const serve::RuleIndex& Model::index() const {
  std::call_once(index_once_, [this] {
    if (!index_.has_value()) {
      index_ = serve::RuleIndex::Build(*graph_);
    }
  });
  return *index_;
}

std::optional<core::VertexId> Model::FindVertex(std::string_view name) const {
  if (!has_graph()) return std::nullopt;
  std::call_once(names_once_, [this] {
    name_index_.reserve(graph_->num_vertices());
    for (core::VertexId v = 0;
         v < static_cast<core::VertexId>(graph_->num_vertices()); ++v) {
      name_index_.emplace(graph_->vertex_name(v), v);
    }
  });
  auto it = name_index_.find(name);
  if (it == name_index_.end()) return std::nullopt;
  return it->second;
}

size_t Model::num_vertices() const {
  return has_graph() ? graph_->num_vertices() : index().num_vertices();
}

size_t Model::num_edges() const {
  return has_graph() ? graph_->num_edges() : index().num_entries();
}

std::string Model::ToString() const {
  std::string out = StrFormat("model v%llu: %zu vertices, %zu edges",
                              static_cast<unsigned long long>(version_),
                              num_vertices(), num_edges());
  if (!spec_.provenance.git_sha.empty()) {
    out += StrFormat(", git_sha=%s", spec_.provenance.git_sha.c_str());
  }
  if (!spec_.provenance.source.empty()) {
    out += StrFormat(", source=\"%s\"", spec_.provenance.source.c_str());
  }
  return out;
}

}  // namespace hypermine::api
