#ifndef HYPERMINE_API_MODEL_H_
#define HYPERMINE_API_MODEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "api/model_spec.h"
#include "core/builder.h"
#include "core/database.h"
#include "core/hypergraph.h"
#include "serve/rule_index.h"
#include "util/status.h"

namespace hypermine {
class ThreadPool;
}

namespace hypermine::api {

/// An immutable, servable association model: the γ-significant directed
/// hypergraph (Definition 3.6), the stats of its construction, the
/// ModelSpec that produced it, and a lazily built serve::RuleIndex for
/// answering queries. Models are created built (Build) or loaded
/// (FromSnapshot / FromFile) and handed around as shared_ptr<const Model>,
/// which is what makes api::Engine's hot swap safe: in-flight queries keep
/// the old model alive while new callers already see the new one.
///
/// Every Model gets a process-unique, monotonically increasing version();
/// Engine keys its result cache on it so a swap can never serve answers
/// computed against a different model.
class Model {
 public:
  /// Builds a model from a discretized database. Stamps the provenance:
  /// an empty git_sha becomes the compiled-in revision (util/build_info.h)
  /// and a zero created_unix becomes the current time. `pool` is an
  /// optional shared builder pool (see BuildAssociationHypergraph); the
  /// spec's config.k must equal db.num_values().
  static StatusOr<std::shared_ptr<const Model>> Build(
      const core::Database& db, ModelSpec spec, ThreadPool* pool = nullptr);

  /// Loads a model from a binary snapshot (serve/snapshot.h). Version-2
  /// snapshots restore the full ModelSpec; version-1 snapshots load with a
  /// default spec.
  static StatusOr<std::shared_ptr<const Model>> FromSnapshot(
      const std::string& path);

  /// Loads a model from either a snapshot or a WriteHypergraphCsv file,
  /// sniffing the format from the leading bytes.
  static StatusOr<std::shared_ptr<const Model>> FromFile(
      const std::string& path);

  /// Wraps an already-built graph (e.g. a filtered or transformed copy of
  /// another model's graph) without re-mining.
  static std::shared_ptr<const Model> FromGraph(core::DirectedHypergraph graph,
                                                ModelSpec spec = {},
                                                core::BuildStats stats = {});

  /// Wraps a bare RuleIndex. Exists only for the deprecated
  /// serve::QueryEngine shim, which predates Model and owns no graph;
  /// graph-dependent methods (graph(), SaveSnapshot, ExportCsv) are
  /// unavailable on such models.
  static std::shared_ptr<const Model> FromIndex(serve::RuleIndex index);

  /// Persists the model as a binary snapshot, spec trailer included, so a
  /// FromSnapshot round trip restores both graph and spec.
  Status SaveSnapshot(const std::string& path) const;

  /// Exports the graph as WriteHypergraphCsv text (the spec does not fit
  /// the CSV schema and is dropped; snapshots are the lossless format).
  Status ExportCsv(const std::string& path) const;

  /// False only for FromIndex models (deprecated shim path).
  bool has_graph() const { return graph_.has_value(); }
  /// Aborts on a FromIndex model; check has_graph() when in doubt.
  const core::DirectedHypergraph& graph() const;
  const core::BuildStats& stats() const { return stats_; }
  const ModelSpec& spec() const { return spec_; }
  uint64_t version() const { return version_; }

  /// The read-optimized query index, built on first use (thread-safe) and
  /// shared by every Engine serving this model.
  const serve::RuleIndex& index() const;

  /// Resolves a vertex name against this model's graph (lazily built name
  /// index); nullopt for unknown names and for FromIndex models.
  std::optional<core::VertexId> FindVertex(std::string_view name) const;

  /// Sizes of the served graph (FromIndex models report the index's
  /// vertex universe and entry count instead).
  size_t num_vertices() const;
  size_t num_edges() const;

  /// One-line human summary: version, sizes, provenance when present.
  std::string ToString() const;

  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

 private:
  Model(std::optional<core::DirectedHypergraph> graph, ModelSpec spec,
        core::BuildStats stats, std::optional<serve::RuleIndex> index);

  std::optional<core::DirectedHypergraph> graph_;
  core::BuildStats stats_;
  ModelSpec spec_;
  uint64_t version_ = 0;

  // The two lazy members below are std::call_once-guarded, not
  // mutex-guarded: written exactly once (under their once_flag) and
  // immutable afterwards, a discipline Clang's thread safety analysis
  // cannot express — the flags stay std::once_flag on purpose, and this
  // class is the repo's one sanctioned <mutex> include outside util/.
  mutable std::once_flag index_once_;
  mutable std::optional<serve::RuleIndex> index_;
  /// Heterogeneous lookup so FindVertex(string_view) — the per-item hot
  /// path of every named query — probes without allocating a std::string.
  struct NameHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  mutable std::once_flag names_once_;
  mutable std::unordered_map<std::string, core::VertexId, NameHash,
                             std::equal_to<>>
      name_index_;
};

}  // namespace hypermine::api

#endif  // HYPERMINE_API_MODEL_H_
