#ifndef HYPERMINE_API_MODEL_SPEC_H_
#define HYPERMINE_API_MODEL_SPEC_H_

#include <cstdint>
#include <string>

#include "core/builder.h"

namespace hypermine::api {

/// Where a model came from. Stamped by api::Model::Build, persisted in the
/// snapshot trailer (format v2, serve/snapshot.h), and reported by
/// `hypermine_serve` on load/convert/reload.
struct ModelProvenance {
  /// Human description of the training data, e.g. "S&P simulation, 80
  /// series, seed 42".
  std::string source;
  /// Code revision that built the model. Model::Build fills it with the
  /// compiled-in sha (util/build_info.h) when left empty.
  std::string git_sha;
  /// Free-form operator note ("demo variant", "retrained after outage").
  std::string note;
  /// Unix seconds at build time; Model::Build stamps the current time when
  /// left 0.
  uint64_t created_unix = 0;

  friend bool operator==(const ModelProvenance&,
                         const ModelProvenance&) = default;

  /// True when nothing was recorded — v1 snapshots and CSV imports load
  /// this way, and tools print "(none recorded)" instead of blanks.
  bool empty() const {
    return source.empty() && git_sha.empty() && note.empty() &&
           created_unix == 0;
  }
};

/// Everything needed to reproduce and audit a model: how the raw data was
/// discretized into the Database's value set, the γ-significance
/// construction parameters (Definition 3.7: a combination enters the
/// hypergraph iff its ACV clears γ times the best simpler baseline), and
/// provenance. ModelSpec is the paper's "model construction" half of the
/// API; api::Engine is the "model use" half.
struct ModelSpec {
  /// k, γ_{1→1}, γ_{2→1}, and the candidate-enumeration switches.
  core::HypergraphConfig config;
  /// Human description of the discretization, e.g. "equi-depth terciles of
  /// day-over-day deltas (k=3)". The Database hands Model::Build already
  /// discretized values; this records how they were produced.
  std::string discretization;
  ModelProvenance provenance;
};

}  // namespace hypermine::api

#endif  // HYPERMINE_API_MODEL_SPEC_H_
