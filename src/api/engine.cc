#include "api/engine.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <utility>

#include "serve/wire.h"
#include "util/fault.h"
#include "util/logging.h"

namespace hypermine::api {

Engine::Engine(std::shared_ptr<const Model> model, EngineOptions options)
    : model_(std::move(model)), cache_capacity_(options.cache_capacity) {
  HM_CHECK(model_ != nullptr);
  if (cache_capacity_ > 0) {
    // Resolve the shard count. Auto shards only once every shard can
    // hold at least 64 entries: per-shard LRU makes the global eviction
    // order approximate, and the approximation is worst when shards are
    // tiny — a capacity-2 cache split in two evicts on every collision.
    // An explicit request is clamped so every shard's capacity slice
    // holds at least one entry (a zero-capacity shard would evict
    // everything it admits).
    size_t shard_count =
        options.cache_shards == 0
            ? std::min<size_t>(8, std::max<size_t>(1, cache_capacity_ / 64))
            : std::min(options.cache_shards, cache_capacity_);
    if (shard_count == 0) shard_count = 1;
    // Split the capacity: base entries everywhere, the remainder spread
    // one each over the first shards, so the slices sum exactly to
    // cache_capacity_.
    const size_t base = cache_capacity_ / shard_count;
    const size_t remainder = cache_capacity_ % shard_count;
    shards_.reserve(shard_count);
    for (size_t i = 0; i < shard_count; ++i) {
      auto shard = std::make_unique<CacheShard>();
      shard->capacity = base + (i < remainder ? 1 : 0);
      shards_.push_back(std::move(shard));
    }
  }
  if (options.pool != nullptr) {
    pool_ = options.pool;
  } else {
    owned_pool_ = std::make_unique<ThreadPool>(options.num_threads);
    pool_ = owned_pool_.get();
  }
}

Engine::CacheShard& Engine::ShardFor(const std::string& key) const {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

void Engine::Swap(std::shared_ptr<const Model> model) {
  HM_CHECK(model != nullptr);
  const uint64_t live_version = model->version();
  {
    MutexLock lock(model_mutex_);
    model_.swap(model);
  }
  swap_count_.fetch_add(1, std::memory_order_relaxed);
  // Eagerly purge entries of other versions, one shard at a time. Keying
  // alone already makes them unreachable (the key leads with the model
  // version, so the swap is coherent across every shard the moment the
  // slot changes); the purge stops a dead model's answers from occupying
  // capacity until LRU pressure pushes them out.
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->model_version != live_version) {
        shard->map.erase(it->key);
        it = shard->lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

std::shared_ptr<const Model> Engine::model() const {
  MutexLock lock(model_mutex_);
  return model_;
}

std::string Engine::CacheKey(uint64_t model_version,
                             const QueryRequest& request,
                             const std::vector<core::VertexId>& items) {
  // TopKWithin and Reachable are both insensitive to item order and
  // duplicates, so the canonical form is the sorted unique item set.
  std::vector<core::VertexId> canonical = items;
  std::sort(canonical.begin(), canonical.end());
  canonical.erase(std::unique(canonical.begin(), canonical.end()),
                  canonical.end());
  std::string key;
  key.reserve(32 + 4 * canonical.size());
  serve::AppendPod<uint64_t>(&key, model_version);
  serve::AppendPod<uint8_t>(
      &key, request.kind == QueryRequest::Kind::kTopK ? 0 : 1);
  serve::AppendPod<uint64_t>(
      &key, request.kind == QueryRequest::Kind::kTopK ? request.k : 0);
  double min_acv =
      request.kind == QueryRequest::Kind::kReachable ? request.min_acv : 0;
  serve::AppendPod<double>(&key, min_acv);
  for (core::VertexId v : canonical) serve::AppendPod<uint32_t>(&key, v);
  return key;
}

StatusOr<QueryResponse> Engine::Process(const Model& model,
                                        const QueryRequest& request) {
  // Resolve the item set. Names win over ids: they are the form that stays
  // meaningful across hot swaps (ids are per-model).
  std::vector<core::VertexId> items;
  if (!request.names.empty()) {
    items.reserve(request.names.size());
    for (const std::string& name : request.names) {
      auto v = model.FindVertex(name);
      if (!v.has_value()) {
        return Status::NotFound("query: unknown vertex \"" + name + "\"");
      }
      items.push_back(*v);
    }
  } else {
    items = request.items;
  }
  if (items.empty()) {
    return Status::InvalidArgument("query: empty item set");
  }
  if (items.size() > kMaxQueryItems) {
    return Status::InvalidArgument(
        "query: item set larger than kMaxQueryItems");
  }

  // Only pay for key canonicalization when a cache exists: the no-cache
  // configuration is the serving hot path benchmarks measure. With a
  // cache, the key picks one shard and only that shard's lock is ever
  // taken — queries landing on different shards proceed in parallel.
  std::string key;
  CacheShard* shard = nullptr;
  if (!shards_.empty()) {
    key = CacheKey(model.version(), request, items);
    shard = &ShardFor(key);
    MutexLock lock(shard->mutex);
    auto it = shard->map.find(key);
    if (it != shard->map.end()) {
      shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
      ++shard->stats.hits;
      QueryResponse hit = it->second->response;
      hit.from_cache = true;
      return hit;
    }
    ++shard->stats.misses;
  }

  QueryResponse response;
  response.model_version = model.version();
  switch (request.kind) {
    case QueryRequest::Kind::kTopK:
      response.ranked = model.index().TopKWithin(items, request.k);
      break;
    case QueryRequest::Kind::kReachable:
      response.closure = model.index().Reachable(items, request.min_acv);
      break;
  }

  if (shard != nullptr) {
    MutexLock lock(shard->mutex);
    // Re-check: a concurrent query for the same key may have inserted
    // while this one computed.
    auto it = shard->map.find(key);
    if (it == shard->map.end()) {
      shard->lru.push_front(CacheEntry{key, model.version(), response});
      shard->map.emplace(shard->lru.front().key, shard->lru.begin());
      if (shard->lru.size() > shard->capacity) {
        shard->map.erase(shard->lru.back().key);
        shard->lru.pop_back();
        ++shard->stats.evictions;
      }
    }
  }
  return response;
}

std::vector<StatusOr<QueryResponse>> Engine::QueryBatch(
    const std::vector<QueryRequest>& requests,
    std::shared_ptr<const Model>* model_out) {
  // Chaos-only stall: lets tests hold a worker inside a batch long enough
  // to pile up queue wait and trip the server's load shedder.
  fault::MaybeDelay("engine.batch");
  // One model acquisition per batch: every answer in the batch comes from
  // the same model, and a concurrent Swap cannot tear the batch.
  std::shared_ptr<const Model> model = this->model();
  if (model_out != nullptr) *model_out = model;
  const size_t n = requests.size();
  if (n == 0) return {};
  if (n == 1) return {Process(*model, requests[0])};

  // Shared batch state: workers steal indices off an atomic cursor. Tasks
  // hold shared ownership because a queued task can outlive the batch when
  // its siblings drained every index first.
  struct BatchState {
    explicit BatchState(size_t n)
        : results(n, StatusOr<QueryResponse>(
                         Status::Internal("query not processed"))) {}
    const std::vector<QueryRequest>* requests = nullptr;
    std::shared_ptr<const Model> model;
    std::vector<StatusOr<QueryResponse>> results;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    Mutex mutex;
    CondVar cv;
    bool complete HM_GUARDED_BY(mutex) = false;
  };
  auto state = std::make_shared<BatchState>(n);
  state->requests = &requests;
  state->model = std::move(model);

  auto run_chunk = [this, state, n] {
    size_t i;
    while ((i = state->next.fetch_add(1)) < n) {
      state->results[i] = Process(*state->model, (*state->requests)[i]);
      if (state->done.fetch_add(1) + 1 == n) {
        MutexLock lock(state->mutex);
        state->complete = true;
        state->cv.NotifyAll();
      }
    }
  };

  const size_t chunks = std::min(pool_->num_threads(), n);
  std::vector<std::function<void()>> tasks(chunks, run_chunk);
  pool_->SubmitAll(std::move(tasks));

  MutexLock lock(state->mutex);
  state->cv.Wait(state->mutex, [&state]() HM_REQUIRES(state->mutex) {
    return state->complete;
  });
  return std::move(state->results);
}

StatusOr<QueryResponse> Engine::Query(
    const QueryRequest& request, std::shared_ptr<const Model>* model_out) {
  std::shared_ptr<const Model> model = this->model();
  if (model_out != nullptr) *model_out = model;
  return Process(*model, request);
}

CacheStats Engine::cache_stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.evictions += shard->stats.evictions;
  }
  return total;
}

std::vector<CacheStats> Engine::cache_shard_stats() const {
  std::vector<CacheStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    out.push_back(shard->stats);
  }
  return out;
}

size_t Engine::cache_entries() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

namespace {

/// A query any servable model should answer cleanly: the first vertex by
/// name. Empty models (no vertices) skip the probe — there is nothing to
/// ask them.
StatusOr<QueryRequest> ProbeRequest(const Model& model) {
  if (!model.has_graph()) {
    return Status::Internal("loaded model has no graph");
  }
  if (model.num_vertices() == 0) {
    return Status::NotFound("model has no vertices to probe");
  }
  QueryRequest probe;
  probe.names.push_back(model.graph().vertex_name(0));
  probe.k = 1;
  return probe;
}

}  // namespace

ReloadReport ReloadEngineFromFile(Engine* engine, const std::string& path) {
  HM_CHECK(engine != nullptr);
  ReloadReport report;
  const std::shared_ptr<const Model> previous = engine->model();
  report.old_version = previous->version();

  auto loaded = Model::FromFile(path);
  if (!loaded.ok()) {
    report.status = loaded.status();
    return report;
  }
  std::shared_ptr<const Model> fresh = std::move(loaded).value();
  report.new_version = fresh->version();

  // Pre-swap verification: force the lazy index and answer a probe against
  // the model directly. A snapshot that parses but cannot serve must never
  // reach the engine slot.
  StatusOr<QueryRequest> probe = ProbeRequest(*fresh);
  if (probe.ok()) {
    const core::VertexId probe_items[] = {0};
    (void)fresh->index().TopKWithin(probe_items, 1);
  } else if (probe.status().code() != StatusCode::kNotFound) {
    report.status = probe.status();
    return report;
  }

  engine->Swap(fresh);

  // Post-swap probe through the engine itself (resolve, cache, batch
  // plumbing). On failure the previous model comes back — serving never
  // sees the bad one again.
  Status live = Status::OK();
  if (probe.ok()) {
    auto answered = engine->Query(*probe);
    live = answered.status();
  }
  if (fault::ShouldFail("reload.verify")) {
    live = Status::Internal("injected fault: reload.verify");
  }
  if (!live.ok()) {
    engine->Swap(previous);
    report.rolled_back = true;
    report.status = Status(
        StatusCode::kFailedPrecondition,
        "post-swap probe failed, previous model restored: " +
            live.ToString());
    return report;
  }
  report.status = Status::OK();
  return report;
}

}  // namespace hypermine::api
