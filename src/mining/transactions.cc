#include "mining/transactions.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine::mining {

StatusOr<TransactionSet> MakeTransactionSet(
    size_t num_items, std::vector<std::vector<ItemId>> transactions) {
  if (num_items == 0) {
    return Status::InvalidArgument("transactions: empty item universe");
  }
  for (auto& txn : transactions) {
    std::sort(txn.begin(), txn.end());
    txn.erase(std::unique(txn.begin(), txn.end()), txn.end());
    if (!txn.empty() && txn.back() >= num_items) {
      return Status::OutOfRange("transactions: item id out of range");
    }
  }
  TransactionSet out;
  out.num_items = num_items;
  out.transactions = std::move(transactions);
  return out;
}

StatusOr<TransactionSet> DatabaseToTransactions(const core::Database& db) {
  if (db.num_observations() == 0) {
    return Status::FailedPrecondition("transactions: empty database");
  }
  const size_t k = db.num_values();
  TransactionSet out;
  out.num_items = db.num_attributes() * k;
  out.transactions.resize(db.num_observations());
  for (size_t o = 0; o < db.num_observations(); ++o) {
    auto& txn = out.transactions[o];
    txn.reserve(db.num_attributes());
    for (core::AttrId a = 0; a < db.num_attributes(); ++a) {
      txn.push_back(static_cast<ItemId>(a * k + db.value(o, a)));
    }
  }
  return out;
}

core::AttributeValue DecodeItem(const core::Database& db, ItemId item) {
  const size_t k = db.num_values();
  HM_CHECK_LT(item, db.num_attributes() * k);
  return core::AttributeValue{static_cast<core::AttrId>(item / k),
                              static_cast<core::ValueId>(item % k)};
}

std::string ItemLabel(const core::Database& db, ItemId item) {
  core::AttributeValue av = DecodeItem(db, item);
  return StrFormat("%s=%d", db.attribute_name(av.attribute).c_str(),
                   static_cast<int>(av.value) + 1);
}

}  // namespace hypermine::mining
