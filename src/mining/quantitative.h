#ifndef HYPERMINE_MINING_QUANTITATIVE_H_
#define HYPERMINE_MINING_QUANTITATIVE_H_

#include <vector>

#include "core/assoc_rule.h"
#include "core/database.h"
#include "mining/rules.h"
#include "util/status.h"

namespace hypermine::mining {

/// An mva-type rule recovered from boolean mining, with its measures.
struct QuantitativeRule {
  core::MvaRule rule;
  double support = 0.0;
  double confidence = 0.0;
};

struct QuantitativeConfig {
  double min_support = 0.05;
  double min_confidence = 0.5;
  /// Cap on |antecedent| + |consequent|.
  size_t max_rule_size = 3;
  /// Cap on consequent size (1 = classification rules).
  size_t max_consequent_size = 1;
  /// Use FP-Growth instead of Apriori for the frequent phase.
  bool use_fpgrowth = false;
};

/// Mines mva-type association rules from a discretized database by the
/// classic quantitative-rule reduction [SA96]: encode (attribute, value)
/// pairs as boolean items, run a frequent-itemset miner, generate rules,
/// decode back. The results are definitionally comparable with
/// core::Support / core::Confidence, which the tests exploit as an
/// independent cross-check of the mva-rule measures.
StatusOr<std::vector<QuantitativeRule>> MineQuantitativeRules(
    const core::Database& db, const QuantitativeConfig& config);

}  // namespace hypermine::mining

#endif  // HYPERMINE_MINING_QUANTITATIVE_H_
