#include "mining/rules.h"

#include <algorithm>
#include <map>

#include "util/string_util.h"

namespace hypermine::mining {

StatusOr<std::vector<MinedRule>> GenerateRules(
    const std::vector<FrequentItemset>& frequent, size_t num_transactions,
    const RuleConfig& config) {
  if (num_transactions == 0) {
    return Status::InvalidArgument("rules: num_transactions must be > 0");
  }
  if (config.min_confidence < 0.0 || config.min_confidence > 1.0) {
    return Status::InvalidArgument("rules: min_confidence outside [0, 1]");
  }
  std::map<std::vector<ItemId>, size_t> support_of;
  for (const FrequentItemset& fi : frequent) {
    support_of[fi.items] = fi.support_count;
  }

  std::vector<MinedRule> rules;
  for (const FrequentItemset& fi : frequent) {
    const size_t n = fi.items.size();
    if (n < 2) continue;
    if (n > 20) {
      return Status::InvalidArgument("rules: itemset too large to partition");
    }
    // Enumerate proper non-empty antecedent subsets by bitmask.
    for (uint32_t mask = 1; mask + 1 < (1u << n); ++mask) {
      std::vector<ItemId> antecedent;
      std::vector<ItemId> consequent;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) {
          antecedent.push_back(fi.items[i]);
        } else {
          consequent.push_back(fi.items[i]);
        }
      }
      if (config.max_consequent_size != 0 &&
          consequent.size() > config.max_consequent_size) {
        continue;
      }
      auto it = support_of.find(antecedent);
      if (it == support_of.end()) {
        return Status::FailedPrecondition(
            "rules: frequent list is not subset-closed");
      }
      double confidence = static_cast<double>(fi.support_count) /
                          static_cast<double>(it->second);
      if (confidence + 1e-12 < config.min_confidence) continue;
      MinedRule rule;
      rule.antecedent = std::move(antecedent);
      rule.consequent = std::move(consequent);
      rule.support = static_cast<double>(fi.support_count) /
                     static_cast<double>(num_transactions);
      rule.confidence = confidence;
      rules.push_back(std::move(rule));
    }
  }
  std::sort(rules.begin(), rules.end(),
            [](const MinedRule& a, const MinedRule& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.support != b.support) return a.support > b.support;
              if (a.antecedent != b.antecedent) {
                return a.antecedent < b.antecedent;
              }
              return a.consequent < b.consequent;
            });
  return rules;
}

std::string RuleToString(const core::Database& db, const MinedRule& rule) {
  auto side = [&db](const std::vector<ItemId>& items) {
    std::string out = "{";
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ", ";
      out += ItemLabel(db, items[i]);
    }
    return out + "}";
  };
  return StrFormat("%s => %s (supp=%.3f, conf=%.3f)",
                   side(rule.antecedent).c_str(),
                   side(rule.consequent).c_str(), rule.support,
                   rule.confidence);
}

}  // namespace hypermine::mining
