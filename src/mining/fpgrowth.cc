#include "mining/fpgrowth.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <unordered_map>

#include "util/logging.h"

namespace hypermine::mining {

namespace {

struct FpNode {
  ItemId item = 0;
  size_t count = 0;
  FpNode* parent = nullptr;
  std::unordered_map<ItemId, FpNode*> children;
  FpNode* next_same_item = nullptr;  // header-table chain
};

/// An FP-tree over (item, count) transactions; owns its nodes.
class FpTree {
 public:
  FpTree() { root_ = NewNode(); }

  FpNode* NewNode() {
    nodes_.emplace_back();
    return &nodes_.back();
  }

  /// Inserts a transaction already filtered and sorted by global frequency
  /// order, accumulating `count`.
  void Insert(const std::vector<ItemId>& items, size_t count) {
    FpNode* node = root_;
    for (ItemId item : items) {
      auto it = node->children.find(item);
      if (it == node->children.end()) {
        FpNode* child = NewNode();
        child->item = item;
        child->parent = node;
        node->children.emplace(item, child);
        // Thread into the header chain.
        child->next_same_item = header_[item];
        header_[item] = child;
        node = child;
      } else {
        node = it->second;
      }
      node->count += count;
    }
  }

  const std::unordered_map<ItemId, FpNode*>& header() const {
    return header_;
  }
  bool empty() const { return root_->children.empty(); }

 private:
  std::deque<FpNode> nodes_;
  FpNode* root_ = nullptr;
  std::unordered_map<ItemId, FpNode*> header_;
};

/// One weighted transaction of a conditional pattern base.
struct WeightedTxn {
  std::vector<ItemId> items;
  size_t count = 0;
};

void Mine(const std::vector<WeightedTxn>& txns, size_t min_count,
          size_t max_size, std::vector<ItemId>* suffix,
          std::vector<FrequentItemset>* out) {
  if (max_size != 0 && suffix->size() >= max_size) return;

  // Frequency pass over the (conditional) base.
  std::unordered_map<ItemId, size_t> counts;
  for (const WeightedTxn& t : txns) {
    for (ItemId item : t.items) counts[item] += t.count;
  }
  std::vector<std::pair<ItemId, size_t>> frequent;
  for (const auto& [item, count] : counts) {
    if (count >= min_count) frequent.emplace_back(item, count);
  }
  if (frequent.empty()) return;
  // Deterministic order: descending count, ascending item id.
  std::sort(frequent.begin(), frequent.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  std::unordered_map<ItemId, size_t> rank;
  for (size_t i = 0; i < frequent.size(); ++i) {
    rank[frequent[i].first] = i;
  }

  // Build the conditional FP-tree.
  FpTree tree;
  std::vector<ItemId> filtered;
  for (const WeightedTxn& t : txns) {
    filtered.clear();
    for (ItemId item : t.items) {
      if (rank.count(item) > 0) filtered.push_back(item);
    }
    std::sort(filtered.begin(), filtered.end(),
              [&rank](ItemId a, ItemId b) { return rank[a] < rank[b]; });
    if (!filtered.empty()) tree.Insert(filtered, t.count);
  }

  // Mine items from least frequent upward.
  for (size_t i = frequent.size(); i-- > 0;) {
    ItemId item = frequent[i].first;
    size_t support = frequent[i].second;
    suffix->push_back(item);
    std::vector<ItemId> itemset = *suffix;
    std::sort(itemset.begin(), itemset.end());
    out->push_back(FrequentItemset{std::move(itemset), support});

    // Conditional pattern base: prefix paths of every node holding `item`.
    std::vector<WeightedTxn> base;
    auto it = tree.header().find(item);
    for (FpNode* node = it == tree.header().end() ? nullptr : it->second;
         node != nullptr; node = node->next_same_item) {
      WeightedTxn txn;
      txn.count = node->count;
      for (FpNode* up = node->parent; up != nullptr && up->parent != nullptr;
           up = up->parent) {
        txn.items.push_back(up->item);
      }
      if (!txn.items.empty() && txn.count > 0) base.push_back(std::move(txn));
    }
    if (!base.empty()) {
      Mine(base, min_count, max_size, suffix, out);
    }
    suffix->pop_back();
  }
}

}  // namespace

StatusOr<std::vector<FrequentItemset>> FpGrowth(const TransactionSet& txns,
                                                const FpGrowthConfig& config) {
  if (config.min_support <= 0.0 || config.min_support > 1.0) {
    return Status::InvalidArgument("fpgrowth: min_support outside (0, 1]");
  }
  if (txns.transactions.empty()) {
    return Status::FailedPrecondition("fpgrowth: no transactions");
  }
  const size_t min_count = static_cast<size_t>(std::max(
      1.0,
      std::ceil(config.min_support *
                static_cast<double>(txns.transactions.size()))));

  std::vector<WeightedTxn> base;
  base.reserve(txns.transactions.size());
  for (const auto& txn : txns.transactions) {
    base.push_back(WeightedTxn{txn, 1});
  }
  std::vector<FrequentItemset> out;
  std::vector<ItemId> suffix;
  Mine(base, min_count, config.max_size, &suffix, &out);

  std::sort(out.begin(), out.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
  return out;
}

}  // namespace hypermine::mining
