#ifndef HYPERMINE_MINING_FPGROWTH_H_
#define HYPERMINE_MINING_FPGROWTH_H_

#include "mining/apriori.h"
#include "mining/transactions.h"
#include "util/status.h"

namespace hypermine::mining {

struct FpGrowthConfig {
  double min_support = 0.1;
  size_t max_size = 0;  // 0 = unbounded itemset size
};

/// FP-Growth (Han et al.): builds a frequency-ordered prefix tree of the
/// transactions and mines frequent itemsets recursively from conditional
/// trees, avoiding Apriori's candidate generation. Returns itemsets in the
/// same (size, lexicographic) order as Apriori() so the two miners can be
/// cross-checked item for item.
StatusOr<std::vector<FrequentItemset>> FpGrowth(const TransactionSet& txns,
                                                const FpGrowthConfig& config);

}  // namespace hypermine::mining

#endif  // HYPERMINE_MINING_FPGROWTH_H_
