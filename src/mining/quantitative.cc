#include "mining/quantitative.h"

#include "mining/apriori.h"
#include "mining/fpgrowth.h"

namespace hypermine::mining {

StatusOr<std::vector<QuantitativeRule>> MineQuantitativeRules(
    const core::Database& db, const QuantitativeConfig& config) {
  HM_ASSIGN_OR_RETURN(TransactionSet txns, DatabaseToTransactions(db));

  std::vector<FrequentItemset> frequent;
  if (config.use_fpgrowth) {
    FpGrowthConfig fp;
    fp.min_support = config.min_support;
    fp.max_size = config.max_rule_size;
    HM_ASSIGN_OR_RETURN(frequent, FpGrowth(txns, fp));
  } else {
    AprioriConfig ap;
    ap.min_support = config.min_support;
    ap.max_size = config.max_rule_size;
    HM_ASSIGN_OR_RETURN(frequent, Apriori(txns, ap));
  }

  RuleConfig rc;
  rc.min_confidence = config.min_confidence;
  rc.max_consequent_size = config.max_consequent_size;
  HM_ASSIGN_OR_RETURN(std::vector<MinedRule> mined,
                      GenerateRules(frequent, txns.size(), rc));

  std::vector<QuantitativeRule> out;
  out.reserve(mined.size());
  for (const MinedRule& rule : mined) {
    QuantitativeRule q;
    for (ItemId item : rule.antecedent) {
      q.rule.antecedent.push_back(DecodeItem(db, item));
    }
    for (ItemId item : rule.consequent) {
      q.rule.consequent.push_back(DecodeItem(db, item));
    }
    q.support = rule.support;
    q.confidence = rule.confidence;
    // Items encode one value per attribute, so pi_1 disjointness holds by
    // construction; validate anyway to keep the invariant explicit.
    HM_RETURN_IF_ERROR(core::ValidateRule(db, q.rule));
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace hypermine::mining
