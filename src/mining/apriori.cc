#include "mining/apriori.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/logging.h"

namespace hypermine::mining {

size_t CountSupport(const TransactionSet& txns,
                    const std::vector<ItemId>& items) {
  HM_CHECK(std::is_sorted(items.begin(), items.end()));
  size_t count = 0;
  for (const auto& txn : txns.transactions) {
    if (std::includes(txn.begin(), txn.end(), items.begin(), items.end())) {
      ++count;
    }
  }
  return count;
}

namespace {

/// Joins two frequent (l-1)-itemsets sharing their first l-2 items into an
/// l-candidate, then prunes candidates with an infrequent subset.
std::vector<std::vector<ItemId>> GenerateCandidates(
    const std::vector<std::vector<ItemId>>& frequent_prev) {
  std::vector<std::vector<ItemId>> candidates;
  const size_t count = frequent_prev.size();
  for (size_t i = 0; i < count; ++i) {
    for (size_t j = i + 1; j < count; ++j) {
      const auto& a = frequent_prev[i];
      const auto& b = frequent_prev[j];
      bool joinable = true;
      for (size_t p = 0; p + 1 < a.size(); ++p) {
        if (a[p] != b[p]) {
          joinable = false;
          break;
        }
      }
      // frequent_prev is sorted lexicographically, so a.back() < b.back()
      // whenever the prefixes match.
      if (!joinable) continue;
      std::vector<ItemId> candidate = a;
      candidate.push_back(b.back());
      // Downward closure: every (l-1)-subset must be frequent.
      bool all_subsets_frequent = true;
      std::vector<ItemId> subset(candidate.size() - 1);
      for (size_t skip = 0; skip + 2 < candidate.size();
           ++skip) {  // Subsets missing the last two are covered by a and b.
        size_t idx = 0;
        for (size_t p = 0; p < candidate.size(); ++p) {
          if (p != skip) subset[idx++] = candidate[p];
        }
        if (!std::binary_search(frequent_prev.begin(), frequent_prev.end(),
                                subset)) {
          all_subsets_frequent = false;
          break;
        }
      }
      if (all_subsets_frequent) candidates.push_back(std::move(candidate));
    }
  }
  return candidates;
}

}  // namespace

StatusOr<std::vector<FrequentItemset>> Apriori(const TransactionSet& txns,
                                               const AprioriConfig& config) {
  if (config.min_support <= 0.0 || config.min_support > 1.0) {
    return Status::InvalidArgument("apriori: min_support outside (0, 1]");
  }
  if (txns.transactions.empty()) {
    return Status::FailedPrecondition("apriori: no transactions");
  }
  const size_t min_count = static_cast<size_t>(std::max(
      1.0,
      std::ceil(config.min_support *
                static_cast<double>(txns.transactions.size()))));

  std::vector<FrequentItemset> result;

  // Level 1: frequent single items by one scan.
  std::vector<size_t> item_counts(txns.num_items, 0);
  for (const auto& txn : txns.transactions) {
    for (ItemId item : txn) ++item_counts[item];
  }
  std::vector<std::vector<ItemId>> frequent_prev;
  for (ItemId item = 0; item < txns.num_items; ++item) {
    if (item_counts[item] >= min_count) {
      frequent_prev.push_back({item});
      result.push_back(FrequentItemset{{item}, item_counts[item]});
    }
  }

  size_t level = 2;
  while (!frequent_prev.empty() &&
         (config.max_size == 0 || level <= config.max_size)) {
    std::vector<std::vector<ItemId>> candidates =
        GenerateCandidates(frequent_prev);
    if (candidates.empty()) break;
    std::vector<std::vector<ItemId>> frequent_now;
    for (auto& candidate : candidates) {
      size_t support = CountSupport(txns, candidate);
      if (support >= min_count) {
        result.push_back(FrequentItemset{candidate, support});
        frequent_now.push_back(std::move(candidate));
      }
    }
    std::sort(frequent_now.begin(), frequent_now.end());
    frequent_prev = std::move(frequent_now);
    ++level;
  }

  std::sort(result.begin(), result.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
  return result;
}

}  // namespace hypermine::mining
