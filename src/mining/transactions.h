#ifndef HYPERMINE_MINING_TRANSACTIONS_H_
#define HYPERMINE_MINING_TRANSACTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/assoc_rule.h"
#include "core/database.h"
#include "util/status.h"

namespace hypermine::mining {

/// Item identifier of the boolean (market-basket) representation.
using ItemId = uint32_t;

/// A transaction data set: each transaction is a sorted, deduplicated list
/// of item ids over the universe [0, num_items).
struct TransactionSet {
  size_t num_items = 0;
  std::vector<std::vector<ItemId>> transactions;

  size_t size() const { return transactions.size(); }
};

/// Normalizes raw transactions (sorts, dedupes, validates item range).
StatusOr<TransactionSet> MakeTransactionSet(
    size_t num_items, std::vector<std::vector<ItemId>> transactions);

/// Encodes a multi-valued database as boolean transactions: observation o
/// becomes the itemset { attr * k + value(o, attr) } — the standard bridge
/// from quantitative/mva data to market-basket mining [SA96]. Items are
/// thus (attribute, value) pairs.
StatusOr<TransactionSet> DatabaseToTransactions(const core::Database& db);

/// Maps an encoded item back to its (attribute, value) pair.
core::AttributeValue DecodeItem(const core::Database& db, ItemId item);

/// Human-readable item label, e.g. "XOM=2" (value shown 1-based as in the
/// thesis' tables).
std::string ItemLabel(const core::Database& db, ItemId item);

}  // namespace hypermine::mining

#endif  // HYPERMINE_MINING_TRANSACTIONS_H_
