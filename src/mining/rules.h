#ifndef HYPERMINE_MINING_RULES_H_
#define HYPERMINE_MINING_RULES_H_

#include <string>
#include <vector>

#include "mining/apriori.h"
#include "mining/transactions.h"
#include "util/status.h"

namespace hypermine::mining {

/// A mined boolean association rule antecedent => consequent with its
/// support (of the union) and confidence.
struct MinedRule {
  std::vector<ItemId> antecedent;  // sorted
  std::vector<ItemId> consequent;  // sorted
  double support = 0.0;
  double confidence = 0.0;
};

struct RuleConfig {
  double min_confidence = 0.5;
  /// Cap on consequent size; 1 gives classification-style rules [LHM98].
  size_t max_consequent_size = 0;  // 0 = unbounded
};

/// Generates association rules from frequent itemsets (the second phase of
/// [AIS93]/[AS94]): for every frequent itemset, every proper non-empty
/// partition into antecedent/consequent with confidence >= min_confidence.
/// `num_transactions` converts counts into support fractions. The frequent
/// list must be closed under subsets (as produced by Apriori/FpGrowth).
StatusOr<std::vector<MinedRule>> GenerateRules(
    const std::vector<FrequentItemset>& frequent, size_t num_transactions,
    const RuleConfig& config);

/// Renders a rule with database-aware item labels.
std::string RuleToString(const core::Database& db, const MinedRule& rule);

}  // namespace hypermine::mining

#endif  // HYPERMINE_MINING_RULES_H_
