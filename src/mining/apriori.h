#ifndef HYPERMINE_MINING_APRIORI_H_
#define HYPERMINE_MINING_APRIORI_H_

#include <vector>

#include "mining/transactions.h"
#include "util/status.h"

namespace hypermine::mining {

/// A frequent itemset with its absolute support count.
struct FrequentItemset {
  std::vector<ItemId> items;  // sorted ascending
  size_t support_count = 0;
};

struct AprioriConfig {
  /// Minimum support as a fraction of transactions, in (0, 1].
  double min_support = 0.1;
  /// Largest itemset size to mine; 0 = unbounded.
  size_t max_size = 0;
};

/// Classic Apriori [AS94]: level-wise candidate generation with the
/// downward-closure prune, support counting by transaction scan. Returns
/// all frequent itemsets sorted by (size, lexicographic items).
StatusOr<std::vector<FrequentItemset>> Apriori(const TransactionSet& txns,
                                               const AprioriConfig& config);

/// Shared helper: counts the transactions containing all of `items`
/// (items must be sorted ascending).
size_t CountSupport(const TransactionSet& txns,
                    const std::vector<ItemId>& items);

}  // namespace hypermine::mining

#endif  // HYPERMINE_MINING_APRIORI_H_
