#ifndef HYPERMINE_MARKET_SERIES_H_
#define HYPERMINE_MARKET_SERIES_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace hypermine::market {

/// A named financial time-series of daily closing prices.
struct PriceSeries {
  std::string symbol;
  std::vector<double> closes;
};

/// Delta time-series (Section 5.1.1): entry i is the fractional change of
/// close i+1 relative to close i. Output length is closes.size() - 1.
/// Fails when fewer than two closes or any close is non-positive.
StatusOr<std::vector<double>> DeltaSeries(const std::vector<double>& closes);

/// Slices [begin, end) of a delta series aligned so that delta day d uses
/// closes d and d+1 (convenience for train/test windows).
StatusOr<std::vector<double>> DeltaSeriesWindow(
    const std::vector<double>& closes, size_t begin, size_t end);

/// L2-normalizes a vector (returns a zero vector unchanged).
std::vector<double> Normalized(const std::vector<double>& v);

}  // namespace hypermine::market

#endif  // HYPERMINE_MARKET_SERIES_H_
