#ifndef HYPERMINE_MARKET_PANEL_H_
#define HYPERMINE_MARKET_PANEL_H_

#include <string>

#include "market/market_sim.h"
#include "util/status.h"

namespace hypermine::market {

/// Writes a panel as CSV: one "day" column plus one column per ticker symbol
/// holding daily closes. The companion metadata header row II (sector codes)
/// makes the file self-describing for LoadPanelCsv.
Status SavePanelCsv(const MarketPanel& panel, const std::string& path);

/// Reads a panel written by SavePanelCsv. Ticker metadata (sector,
/// sub-sector, role) is restored from the embedded sector row; symbols from
/// the paper additionally get their taxonomy entry from PaperTickers().
StatusOr<MarketPanel> LoadPanelCsv(const std::string& path, int first_year);

}  // namespace hypermine::market

#endif  // HYPERMINE_MARKET_PANEL_H_
