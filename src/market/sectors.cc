#include "market/sectors.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine::market {

const char* SectorCode(Sector sector) {
  switch (sector) {
    case Sector::kBasicMaterials:
      return "BM";
    case Sector::kCapitalGoods:
      return "CG";
    case Sector::kConglomerates:
      return "C";
    case Sector::kConsumerCyclical:
      return "CC";
    case Sector::kConsumerNonCyclical:
      return "CN";
    case Sector::kEnergy:
      return "E";
    case Sector::kFinancial:
      return "F";
    case Sector::kHealthcare:
      return "H";
    case Sector::kServices:
      return "SV";
    case Sector::kTechnology:
      return "T";
    case Sector::kTransportation:
      return "TP";
    case Sector::kUtilities:
      return "U";
  }
  return "?";
}

const char* SectorName(Sector sector) {
  switch (sector) {
    case Sector::kBasicMaterials:
      return "Basic Materials";
    case Sector::kCapitalGoods:
      return "Capital Goods";
    case Sector::kConglomerates:
      return "Conglomerates";
    case Sector::kConsumerCyclical:
      return "Consumer Cyclical";
    case Sector::kConsumerNonCyclical:
      return "Consumer Noncyclical";
    case Sector::kEnergy:
      return "Energy";
    case Sector::kFinancial:
      return "Financial";
    case Sector::kHealthcare:
      return "Healthcare";
    case Sector::kServices:
      return "Services";
    case Sector::kTechnology:
      return "Technology";
    case Sector::kTransportation:
      return "Transportation";
    case Sector::kUtilities:
      return "Utilities";
  }
  return "?";
}

StatusOr<Sector> SectorFromCode(const std::string& code) {
  static const std::map<std::string, Sector> kByCode = {
      {"BM", Sector::kBasicMaterials},
      {"CG", Sector::kCapitalGoods},
      {"C", Sector::kConglomerates},
      {"CC", Sector::kConsumerCyclical},
      {"CN", Sector::kConsumerNonCyclical},
      {"E", Sector::kEnergy},
      {"F", Sector::kFinancial},
      {"H", Sector::kHealthcare},
      {"SV", Sector::kServices},
      {"T", Sector::kTechnology},
      {"TP", Sector::kTransportation},
      {"U", Sector::kUtilities},
  };
  auto it = kByCode.find(code);
  if (it == kByCode.end()) {
    return Status::NotFound("unknown sector code: " + code);
  }
  return it->second;
}

const char* RoleName(Role role) {
  switch (role) {
    case Role::kProducer:
      return "producer";
    case Role::kConsumer:
      return "consumer";
    case Role::kNeutral:
      return "neutral";
  }
  return "?";
}

namespace {

/// Sector-level default role, per the producer/consumer discussion in
/// Section 5.2. Services is handled per sub-sector (real estate = producer).
Role DefaultRole(Sector sector) {
  switch (sector) {
    case Sector::kBasicMaterials:
    case Sector::kCapitalGoods:
    case Sector::kEnergy:
      return Role::kProducer;
    case Sector::kConsumerCyclical:
    case Sector::kConsumerNonCyclical:
    case Sector::kHealthcare:
    case Sector::kServices:
    case Sector::kTechnology:
      return Role::kConsumer;
    case Sector::kConglomerates:
    case Sector::kFinancial:
    case Sector::kTransportation:
    case Sector::kUtilities:
      return Role::kNeutral;
  }
  return Role::kNeutral;
}

std::vector<SubSector> BuildTaxonomy() {
  // 104 sub-sectors total; the 11 Technology entries are the paper's own
  // list, the rest follow the classic sector taxonomy the thesis refers to.
  struct Group {
    Sector sector;
    std::vector<const char*> names;
  };
  const std::vector<Group> groups = {
      {Sector::kBasicMaterials,
       {"Chemicals - Major", "Chemicals - Specialty", "Iron & Steel",
        "Gold & Silver", "Metal Mining", "Paper & Paper Products",
        "Containers & Packaging", "Forestry & Wood Products",
        "Fabricated Plastic & Rubber", "Misc. Fabricated Products"}},
      {Sector::kCapitalGoods,
       {"Aerospace & Defense", "Construction & Agricultural Machinery",
        "Construction Supplies & Fixtures", "Industrial Machinery",
        "Misc. Capital Goods", "Mobile Homes & RVs", "Construction Services",
        "Construction - Raw Materials", "Tools & Hardware"}},
      {Sector::kConglomerates,
       {"Conglomerates - Diversified", "Conglomerates - Industrial",
        "Conglomerates - Holding"}},
      {Sector::kConsumerCyclical,
       {"Auto & Truck Manufacturers", "Auto & Truck Parts", "Tires",
        "Apparel & Accessories", "Footwear", "Furniture & Fixtures",
        "Appliance & Tool", "Audio & Video Equipment",
        "Jewelry & Silverware", "Recreational Products"}},
      {Sector::kConsumerNonCyclical,
       {"Food Processing", "Beverages - Non-Alcoholic",
        "Beverages - Alcoholic", "Personal & Household Products", "Tobacco",
        "Crops", "Fish & Livestock", "Office Supplies"}},
      {Sector::kEnergy,
       {"Oil & Gas - Integrated", "Oil & Gas Operations",
        "Oil Well Services & Equipment", "Oil & Gas Drilling", "Coal",
        "Pipelines", "Oil & Gas Refining & Marketing",
        "Alternative Energy Sources"}},
      {Sector::kFinancial,
       {"Money Center Banks", "Regional Banks", "Investment Services",
        "Insurance - Life", "Insurance - Property & Casualty",
        "Insurance - Miscellaneous", "Consumer Financial Services",
        "Misc. Financial Services", "S&Ls / Savings Banks",
        "Asset Management"}},
      {Sector::kHealthcare,
       {"Major Drugs", "Biotechnology & Drugs",
        "Medical Equipment & Supplies", "Healthcare Facilities",
        "Managed Health Care", "Drug Delivery", "Diagnostic Substances",
        "Drug Related Products", "Medical Practitioners",
        "Medical Instruments"}},
      {Sector::kServices,
       {"Retail - Department & Discount", "Retail - Apparel",
        "Retail - Grocery", "Retail - Home Improvement",
        "Retail - Specialty", "Restaurants", "Real Estate Operations",
        "Business Services", "Communications Services",
        "Broadcasting & Cable TV", "Hotels & Motels", "Personal Services",
        "Printing & Publishing"}},
      {Sector::kTechnology,
       {"Communications Equipment", "Computer Hardware", "Computer Networks",
        "Computer Peripherals", "Computer Services",
        "Computer Storage Devices", "Electronic Instr. and Controls",
        "Office Equipment", "Scientific and Technical Instr.",
        "Semiconductors", "Software and Programming"}},
      {Sector::kTransportation,
       {"Air Courier", "Airline", "Railroads", "Trucking",
        "Water Transportation", "Misc. Transportation"}},
      {Sector::kUtilities,
       {"Electric Utilities", "Natural Gas Utilities", "Water Utilities",
        "Diversified Utilities", "Independent Power Producers",
        "Multi-Utilities"}},
  };

  std::vector<SubSector> taxonomy;
  for (const Group& group : groups) {
    for (const char* name : group.names) {
      Role role = DefaultRole(group.sector);
      // The thesis singles out real-estate services as producer-like
      // (e.g. Kimco Realty) while end-user services are consumers.
      if (group.sector == Sector::kServices &&
          std::string(name) == "Real Estate Operations") {
        role = Role::kProducer;
      }
      taxonomy.push_back(SubSector{name, group.sector, role});
    }
  }
  HM_CHECK_EQ(taxonomy.size(), 104u);
  return taxonomy;
}

size_t SubSectorIndex(Sector sector, const char* name) {
  const auto& taxonomy = SubSectorTaxonomy();
  for (size_t i = 0; i < taxonomy.size(); ++i) {
    if (taxonomy[i].sector == sector && taxonomy[i].name == name) return i;
  }
  HM_LOG_FATAL << "unknown sub-sector " << name << " in sector "
               << SectorCode(sector);
  return 0;
}

std::vector<Ticker> BuildPaperTickers() {
  struct Entry {
    const char* symbol;
    Sector sector;
    const char* subsector;
  };
  // Symbols and sectors exactly as reported in Tables 5.1/5.2 and the text
  // of Section 5.2 (sector attribution "per google finance" in the thesis).
  const std::vector<Entry> entries = {
      // Basic Materials.
      {"EMN", Sector::kBasicMaterials, "Chemicals - Major"},
      {"PPG", Sector::kBasicMaterials, "Chemicals - Major"},
      {"DOW", Sector::kBasicMaterials, "Chemicals - Major"},
      {"FMC", Sector::kBasicMaterials, "Chemicals - Specialty"},
      {"AVY", Sector::kBasicMaterials, "Containers & Packaging"},
      {"BLL", Sector::kBasicMaterials, "Containers & Packaging"},
      {"IFF", Sector::kBasicMaterials, "Chemicals - Specialty"},
      // Capital Goods.
      {"HON", Sector::kCapitalGoods, "Aerospace & Defense"},
      {"CAT", Sector::kCapitalGoods, "Construction & Agricultural Machinery"},
      {"UTX", Sector::kCapitalGoods, "Aerospace & Defense"},
      {"BA", Sector::kCapitalGoods, "Aerospace & Defense"},
      // Conglomerates.
      {"TXT", Sector::kConglomerates, "Conglomerates - Industrial"},
      // Consumer Cyclical.
      {"GT", Sector::kConsumerCyclical, "Tires"},
      {"F", Sector::kConsumerCyclical, "Auto & Truck Manufacturers"},
      // Consumer Noncyclical.
      {"PG", Sector::kConsumerNonCyclical, "Personal & Household Products"},
      {"CL", Sector::kConsumerNonCyclical, "Personal & Household Products"},
      {"CLX", Sector::kConsumerNonCyclical, "Personal & Household Products"},
      {"K", Sector::kConsumerNonCyclical, "Food Processing"},
      {"CPB", Sector::kConsumerNonCyclical, "Food Processing"},
      {"PEP", Sector::kConsumerNonCyclical, "Beverages - Non-Alcoholic"},
      // Energy.
      {"XOM", Sector::kEnergy, "Oil & Gas - Integrated"},
      {"CVX", Sector::kEnergy, "Oil & Gas - Integrated"},
      {"HES", Sector::kEnergy, "Oil & Gas - Integrated"},
      {"SLB", Sector::kEnergy, "Oil Well Services & Equipment"},
      {"COG", Sector::kEnergy, "Oil & Gas Operations"},
      // Financial.
      {"AIG", Sector::kFinancial, "Insurance - Property & Casualty"},
      {"C", Sector::kFinancial, "Money Center Banks"},
      {"BEN", Sector::kFinancial, "Asset Management"},
      {"PGR", Sector::kFinancial, "Insurance - Property & Casualty"},
      {"AON", Sector::kFinancial, "Insurance - Miscellaneous"},
      {"CI", Sector::kFinancial, "Insurance - Life"},
      {"AXP", Sector::kFinancial, "Consumer Financial Services"},
      {"BAC", Sector::kFinancial, "Money Center Banks"},
      // Healthcare.
      {"JNJ", Sector::kHealthcare, "Major Drugs"},
      {"MRK", Sector::kHealthcare, "Major Drugs"},
      {"ABT", Sector::kHealthcare, "Major Drugs"},
      // Services.
      {"JCP", Sector::kServices, "Retail - Department & Discount"},
      {"M", Sector::kServices, "Retail - Department & Discount"},
      {"FDO", Sector::kServices, "Retail - Department & Discount"},
      {"GPS", Sector::kServices, "Retail - Apparel"},
      {"COST", Sector::kServices, "Retail - Department & Discount"},
      {"HD", Sector::kServices, "Retail - Home Improvement"},
      {"SYY", Sector::kServices, "Business Services"},
      {"KIM", Sector::kServices, "Real Estate Operations"},
      {"YHOO", Sector::kServices, "Communications Services"},
      // Technology.
      {"INTC", Sector::kTechnology, "Semiconductors"},
      {"LLTC", Sector::kTechnology, "Semiconductors"},
      {"XLNX", Sector::kTechnology, "Semiconductors"},
      {"EMC", Sector::kTechnology, "Computer Storage Devices"},
      {"QCOM", Sector::kTechnology, "Communications Equipment"},
      {"CTXS", Sector::kTechnology, "Software and Programming"},
      {"ITT", Sector::kTechnology, "Electronic Instr. and Controls"},
      {"ROK", Sector::kTechnology, "Electronic Instr. and Controls"},
      {"ETN", Sector::kTechnology, "Electronic Instr. and Controls"},
      // Transportation.
      {"FDX", Sector::kTransportation, "Air Courier"},
      {"EXPD", Sector::kTransportation, "Air Courier"},
      // Utilities.
      {"TE", Sector::kUtilities, "Electric Utilities"},
      {"PGN", Sector::kUtilities, "Electric Utilities"},
      {"AEP", Sector::kUtilities, "Electric Utilities"},
      {"SO", Sector::kUtilities, "Electric Utilities"},
      {"TEG", Sector::kUtilities, "Diversified Utilities"},
      {"PEG", Sector::kUtilities, "Diversified Utilities"},
  };

  const auto& taxonomy = SubSectorTaxonomy();
  std::vector<Ticker> tickers;
  tickers.reserve(entries.size());
  for (const Entry& entry : entries) {
    size_t sub = SubSectorIndex(entry.sector, entry.subsector);
    tickers.push_back(Ticker{entry.symbol, entry.sector, sub,
                             taxonomy[sub].role, /*from_paper=*/true});
  }
  return tickers;
}

}  // namespace

const std::vector<SubSector>& SubSectorTaxonomy() {
  static const std::vector<SubSector>& taxonomy =
      *new std::vector<SubSector>(BuildTaxonomy());
  return taxonomy;
}

size_t SubSectorCount(Sector sector) {
  size_t count = 0;
  for (const SubSector& sub : SubSectorTaxonomy()) {
    if (sub.sector == sector) ++count;
  }
  return count;
}

const std::vector<Ticker>& PaperTickers() {
  static const std::vector<Ticker>& tickers =
      *new std::vector<Ticker>(BuildPaperTickers());
  return tickers;
}

StatusOr<std::vector<Ticker>> BuildUniverse(size_t num_series) {
  if (num_series == 0) {
    return Status::InvalidArgument("BuildUniverse: num_series must be > 0");
  }
  const auto& taxonomy = SubSectorTaxonomy();
  std::vector<Ticker> universe = PaperTickers();
  if (universe.size() > num_series) universe.resize(num_series);

  std::set<std::string> symbols;
  for (const Ticker& t : universe) symbols.insert(t.symbol);

  // Fill the remainder round-robin across sub-sectors so every universe
  // size covers the taxonomy as broadly as possible. Synthetic symbols are
  // "<SECTOR><nn>" with a per-sector serial (digits never collide with the
  // purely alphabetic paper symbols).
  std::map<Sector, size_t> serials;
  size_t sub = 0;
  while (universe.size() < num_series) {
    const SubSector& info = taxonomy[sub];
    std::string symbol =
        StrFormat("%s%02zu", SectorCode(info.sector), ++serials[info.sector]);
    HM_CHECK(symbols.insert(symbol).second);
    universe.push_back(
        Ticker{symbol, info.sector, sub, info.role, /*from_paper=*/false});
    sub = (sub + 1) % taxonomy.size();
  }
  return universe;
}

size_t DistinctSubSectors(const std::vector<Ticker>& universe) {
  std::set<size_t> seen;
  for (const Ticker& t : universe) seen.insert(t.subsector);
  return seen.size();
}

}  // namespace hypermine::market
