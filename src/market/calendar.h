#ifndef HYPERMINE_MARKET_CALENDAR_H_
#define HYPERMINE_MARKET_CALENDAR_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace hypermine::market {

/// Number of simulated trading days per calendar year. The paper's data set
/// (Jan 1995 – Dec 2009) has ~252 trading days per year.
inline constexpr size_t kTradingDaysPerYear = 252;

/// A simulated trading calendar covering whole years, mapping a flat day
/// index to (year, day-of-year). The experiments slice training/test windows
/// by year exactly as Section 5.5.1 does (train Jan 1 1996 .. Dec 31 Y, test
/// year Y+1).
class TradingCalendar {
 public:
  /// Calendar spanning `num_years` years starting at `first_year`
  /// (e.g. 1995, 15 -> 1995..2009, the paper's range).
  TradingCalendar(int first_year, size_t num_years);

  int first_year() const { return first_year_; }
  int last_year() const {
    return first_year_ + static_cast<int>(num_years_) - 1;
  }
  size_t num_years() const { return num_years_; }
  size_t num_days() const { return num_years_ * kTradingDaysPerYear; }

  /// Year of the given flat day index.
  int YearOfDay(size_t day) const;
  /// 0-based trading day within its year.
  size_t DayOfYear(size_t day) const;

  /// Flat [begin, end) day range of the inclusive year span; fails when the
  /// span falls outside the calendar or is inverted.
  StatusOr<std::pair<size_t, size_t>> DayRangeForYears(int begin_year,
                                                       int end_year) const;

  /// Human-readable label like "1996-003".
  std::string DayLabel(size_t day) const;

 private:
  int first_year_;
  size_t num_years_;
};

}  // namespace hypermine::market

#endif  // HYPERMINE_MARKET_CALENDAR_H_
