#include "market/market_sim.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace hypermine::market {

namespace {

/// Standard-normal tercile boundaries and conditional means.
constexpr double kTercileBoundary = 0.43073;  // Phi^-1(2/3)
constexpr double kTercileMean = 1.09130;      // E[Z | Z > boundary]

const RoleLoadings& LoadingsFor(const MarketConfig& config, Role role) {
  switch (role) {
    case Role::kProducer:
      return config.producer;
    case Role::kConsumer:
      return config.consumer;
    case Role::kNeutral:
      return config.neutral;
  }
  return config.neutral;
}

double SystematicStdDev(const RoleLoadings& l) {
  return std::sqrt(l.market * l.market + l.demand * l.demand +
                   l.sector * l.sector + l.subsector * l.subsector);
}

}  // namespace

double TercileQuantize(double standardized) {
  if (standardized < -kTercileBoundary) return -kTercileMean;
  if (standardized > kTercileBoundary) return kTercileMean;
  return 0.0;
}

StatusOr<MarketPanel> SimulateMarket(const MarketConfig& config) {
  if (config.num_series == 0) {
    return Status::InvalidArgument("SimulateMarket: num_series must be > 0");
  }
  if (config.num_years == 0) {
    return Status::InvalidArgument("SimulateMarket: num_years must be > 0");
  }
  if (config.daily_vol_scale <= 0.0) {
    return Status::InvalidArgument("SimulateMarket: vol scale must be > 0");
  }

  MarketPanel panel;
  panel.calendar = TradingCalendar(config.first_year, config.num_years);
  HM_ASSIGN_OR_RETURN(panel.tickers, BuildUniverse(config.num_series));

  const size_t num_days = panel.calendar.num_days();
  const size_t num_subsectors = SubSectorTaxonomy().size();
  const double drift = config.annual_drift / kTradingDaysPerYear;

  const size_t num_segments = std::max<size_t>(1, config.demand_segments);

  // Factor paths come from their own generator so that they are identical
  // for every universe size under the same seed (universe growth only adds
  // series, it does not perturb existing ones).
  Rng factor_rng(config.seed);
  std::vector<double> market_factor(num_days);
  // Segmented end-user demand plus its aggregate (unit variance each).
  std::vector<std::vector<double>> demand_segment(
      num_segments, std::vector<double>(num_days));
  std::vector<double> demand_aggregate(num_days);
  std::vector<std::vector<double>> sector_factor(
      kNumSectors, std::vector<double>(num_days));
  std::vector<std::vector<double>> subsector_factor(
      num_subsectors, std::vector<double>(num_days));
  const double segment_norm = 1.0 / std::sqrt(static_cast<double>(num_segments));
  for (size_t t = 0; t < num_days; ++t) {
    market_factor[t] = factor_rng.NextGaussian();
    double agg = 0.0;
    for (size_t j = 0; j < num_segments; ++j) {
      demand_segment[j][t] = factor_rng.NextGaussian();
      agg += demand_segment[j][t];
    }
    demand_aggregate[t] = agg * segment_norm;
    for (size_t s = 0; s < kNumSectors; ++s) {
      sector_factor[s][t] = factor_rng.NextGaussian();
    }
    for (size_t u = 0; u < num_subsectors; ++u) {
      subsector_factor[u][t] = factor_rng.NextGaussian();
    }
  }

  // Consumers are assigned demand niches round-robin.
  size_t next_segment = 0;

  panel.series.resize(panel.tickers.size());
  for (size_t i = 0; i < panel.tickers.size(); ++i) {
    const Ticker& ticker = panel.tickers[i];
    RoleLoadings l = LoadingsFor(config, ticker.role);

    // Per-series generator decorrelated from the factor stream.
    Rng idio_rng(config.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));

    // Per-ticker heterogeneity (drawn first so the factor loadings are a
    // deterministic function of seed and series index).
    double demand_jitter =
        ticker.role == Role::kConsumer
            ? 1.0 + 2.0 * config.demand_spread * idio_rng.NextDouble()
            : 1.0 - config.demand_spread +
                  config.demand_spread * 2.0 * idio_rng.NextDouble();
    double idio_jitter = 1.0 - config.idio_spread +
                         config.idio_spread * 2.0 * idio_rng.NextDouble();
    l.demand *= demand_jitter;
    l.idiosyncratic *= idio_jitter;
    const double sys_sd = SystematicStdDev(l);
    HM_CHECK_GT(sys_sd, 0.0);
    double price = config.min_price0 +
                   idio_rng.NextDouble() *
                       (config.max_price0 - config.min_price0);

    PriceSeries& series = panel.series[i];
    series.symbol = ticker.symbol;
    series.closes.resize(num_days);
    series.closes[0] = price;

    const size_t sector = static_cast<size_t>(ticker.sector);
    const std::vector<double>& demand_path =
        ticker.role == Role::kConsumer
            ? demand_segment[next_segment++ % num_segments]
            : demand_aggregate;
    for (size_t t = 1; t < num_days; ++t) {
      double sys = l.market * market_factor[t] +
                   l.demand * demand_path[t] +
                   l.sector * sector_factor[sector][t] +
                   l.subsector * subsector_factor[ticker.subsector][t];
      if (l.quantization > 0.0) {
        double quantized = sys_sd * TercileQuantize(sys / sys_sd);
        sys = (1.0 - l.quantization) * sys + l.quantization * quantized;
      }
      double standardized = sys + l.idiosyncratic * idio_rng.NextGaussian();
      double r = config.daily_vol_scale * standardized + drift;
      r = std::clamp(r, -0.25, 0.25);
      price *= (1.0 + r);
      series.closes[t] = price;
    }
  }
  return panel;
}

}  // namespace hypermine::market
