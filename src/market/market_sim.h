#ifndef HYPERMINE_MARKET_MARKET_SIM_H_
#define HYPERMINE_MARKET_MARKET_SIM_H_

#include <cstdint>
#include <vector>

#include "market/calendar.h"
#include "market/sectors.h"
#include "market/series.h"
#include "util/status.h"

namespace hypermine::market {

/// Per-role factor loadings of the return model (see SimulateMarket).
struct RoleLoadings {
  double market = 0.5;     ///< loading on the market-wide factor M_t
  double demand = 0.65;    ///< loading on the end-user demand factor D_t
  double sector = 0.6;     ///< loading on the sector factor S_{s,t}
  double subsector = 0.3;  ///< loading on the sub-sector factor U_{u,t}
  double idiosyncratic = 0.65;  ///< stddev of the series' own noise
  /// Blend weight toward a tercile-quantized systematic component. Producers
  /// respond coarsely and robustly to aggregate conditions, which makes
  /// their discretized values highly predictable (high weighted in-degree,
  /// Section 5.2) while revealing only coarse information as predictors.
  double quantization = 0.0;
};

/// Configuration of the synthetic S&P 500 substitute. Defaults reproduce the
/// paper's qualitative structure at laptop scale; `num_series = 346,
/// num_years = 15` matches the paper's data set dimensions.
struct MarketConfig {
  size_t num_series = 120;
  int first_year = 1995;
  size_t num_years = 11;
  uint64_t seed = 20120401;

  RoleLoadings producer{0.45, 0.90, 0.55, 0.3, 0.40, 0.92};
  RoleLoadings consumer{0.50, 1.30, 0.40, 0.3, 0.55, 0.0};
  RoleLoadings neutral{0.35, 0.35, 0.65, 0.3, 0.95, 0.0};

  /// End-user demand is segmented (Section 5.2's narrative): each consumer
  /// tracks its own demand niche d_{seg}, while producers and neutrals
  /// respond to the *aggregate* demand (sum of segments / sqrt(J)). This
  /// is what makes consumers good predictors of producers without making
  /// consumers mutually predictable — the directional structure behind
  /// Figure 5.1's in/out-degree separation.
  size_t demand_segments = 4;

  /// Per-ticker heterogeneity: each series draws a deterministic demand
  /// multiplier in [1 - spread, 1 + spread] (consumers skew high:
  /// [1, 1 + 2*spread]) and an idiosyncratic-vol multiplier in
  /// [1 - idio_spread, 1 + idio_spread]. This produces the fat top tails
  /// of the degree distributions in Figure 5.1 — a handful of strongly
  /// demand-coupled consumers become the market's best predictors.
  double demand_spread = 0.25;
  double idio_spread = 0.15;

  /// Converts the standardized model return into a daily fractional change.
  double daily_vol_scale = 0.015;
  /// Annualized drift shared by all series.
  double annual_drift = 0.06;
  /// Initial prices are drawn uniformly from [min_price0, max_price0].
  double min_price0 = 12.0;
  double max_price0 = 150.0;
};

/// A simulated market: calendar, ticker metadata, and aligned price series
/// (one close per calendar day per ticker).
struct MarketPanel {
  TradingCalendar calendar{1995, 1};
  std::vector<Ticker> tickers;
  std::vector<PriceSeries> series;

  size_t num_series() const { return tickers.size(); }
  size_t num_days() const { return calendar.num_days(); }
};

/// Simulates daily closing prices with the return model
///
///   r_{i,t} = vol * (sys_{i,t} + sigma_i * eps_{i,t}) + drift,
///   sys_{i,t} = blend_q( bm*M_t + bd*D_t + bs*S_{sector(i),t}
///                        + bu*U_{subsector(i),t} ),
///
/// where all factors are i.i.d. standard normal, loadings depend on the
/// ticker's Role, and blend_q mixes the raw systematic component with its
/// tercile-quantized version (producers only by default). Prices follow
/// P_{t+1} = P_t * (1 + r) with r clamped to (-0.25, 0.25).
///
/// The substitution rationale (DESIGN.md): the paper's algorithms consume
/// only discretized delta series, and this model reproduces the association
/// structure the evaluation depends on — strong within-sector co-movement,
/// demand-driven cross-sector links from consumers to producers, predictable
/// low-noise producers, and noisy consumer series.
StatusOr<MarketPanel> SimulateMarket(const MarketConfig& config);

/// Tercile quantization of a standardized value: maps to the conditional
/// mean of its standard-normal tercile (-1.0913, 0, +1.0913). Exposed for
/// tests.
double TercileQuantize(double standardized);

}  // namespace hypermine::market

#endif  // HYPERMINE_MARKET_MARKET_SIM_H_
