#include "market/euclidean.h"

#include <cmath>

#include "market/series.h"

namespace hypermine::market {

StatusOr<double> EuclideanDistance(const std::vector<double>& delta_a,
                                   const std::vector<double>& delta_b) {
  if (delta_a.empty() || delta_a.size() != delta_b.size()) {
    return Status::InvalidArgument(
        "EuclideanDistance: deltas must have equal non-zero lengths");
  }
  std::vector<double> na = Normalized(delta_a);
  std::vector<double> nb = Normalized(delta_b);
  double acc = 0.0;
  for (size_t i = 0; i < na.size(); ++i) {
    double d = na[i] - nb[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

StatusOr<double> EuclideanSimilarity(const std::vector<double>& delta_a,
                                     const std::vector<double>& delta_b) {
  HM_ASSIGN_OR_RETURN(double ed, EuclideanDistance(delta_a, delta_b));
  return 1.0 - 0.5 * ed;
}

}  // namespace hypermine::market
