#ifndef HYPERMINE_MARKET_SECTORS_H_
#define HYPERMINE_MARKET_SECTORS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace hypermine::market {

/// The 12 industrial sectors of the paper's S&P 500 snapshot (Chapter 5).
enum class Sector {
  kBasicMaterials = 0,   // BM
  kCapitalGoods,         // CG
  kConglomerates,        // C
  kConsumerCyclical,     // CC
  kConsumerNonCyclical,  // CN
  kEnergy,               // E
  kFinancial,            // F
  kHealthcare,           // H
  kServices,             // SV
  kTechnology,           // T
  kTransportation,       // TP
  kUtilities,            // U
};

inline constexpr size_t kNumSectors = 12;

/// Short code used in the paper's tables ("BM", "CG", "C", ...).
const char* SectorCode(Sector sector);
/// Full sector name ("Basic Materials", ...).
const char* SectorName(Sector sector);
/// Inverse of SectorCode; fails on unknown codes.
StatusOr<Sector> SectorFromCode(const std::string& code);

/// Economic role in the producer/consumer narrative of Section 5.2.
/// Producers (BM, CG, E, and real-estate SV) rely little on other companies
/// and are *predictable* (high weighted in-degree); consumers (CC, CN, H,
/// most SV, T) face end-users and are good *predictors* (high weighted
/// out-degree). Other sectors are neutral.
enum class Role { kProducer = 0, kConsumer, kNeutral };

const char* RoleName(Role role);

/// A sub-sector of the taxonomy. The paper reports 104 sub-sectors across
/// the 12 sectors (11 under Technology, which are listed verbatim).
struct SubSector {
  std::string name;
  Sector sector;
  Role role;
};

/// The full 104-entry sub-sector taxonomy, grouped by sector.
const std::vector<SubSector>& SubSectorTaxonomy();

/// Number of sub-sectors under a sector.
size_t SubSectorCount(Sector sector);

/// One listed company in the simulated universe.
struct Ticker {
  std::string symbol;
  Sector sector;
  /// Index into SubSectorTaxonomy().
  size_t subsector;
  Role role;
  /// True for the ~60 symbols named in the paper's tables and text.
  bool from_paper = false;
};

/// All tickers named in the thesis (Tables 5.1/5.2 and Section 5.2),
/// with their reported sectors.
const std::vector<Ticker>& PaperTickers();

/// Builds a universe of `num_series` tickers: the paper's named tickers
/// first, then synthetic symbols distributed round-robin across all
/// sub-sectors. Fails when num_series is zero. The paper's full universe is
/// 346 series; smaller universes keep single-core experiments fast.
StatusOr<std::vector<Ticker>> BuildUniverse(size_t num_series);

/// Number of distinct sub-sectors that appear in a universe (the paper sets
/// the t-clustering parameter t to this count).
size_t DistinctSubSectors(const std::vector<Ticker>& universe);

}  // namespace hypermine::market

#endif  // HYPERMINE_MARKET_SECTORS_H_
