#include "market/calendar.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace hypermine::market {

TradingCalendar::TradingCalendar(int first_year, size_t num_years)
    : first_year_(first_year), num_years_(num_years) {
  HM_CHECK_GT(num_years, 0u);
}

int TradingCalendar::YearOfDay(size_t day) const {
  HM_CHECK_LT(day, num_days());
  return first_year_ + static_cast<int>(day / kTradingDaysPerYear);
}

size_t TradingCalendar::DayOfYear(size_t day) const {
  HM_CHECK_LT(day, num_days());
  return day % kTradingDaysPerYear;
}

StatusOr<std::pair<size_t, size_t>> TradingCalendar::DayRangeForYears(
    int begin_year, int end_year) const {
  if (begin_year > end_year) {
    return Status::InvalidArgument("DayRangeForYears: inverted year span");
  }
  if (begin_year < first_year_ || end_year > last_year()) {
    return Status::OutOfRange(StrFormat(
        "DayRangeForYears: [%d, %d] outside calendar [%d, %d]", begin_year,
        end_year, first_year_, last_year()));
  }
  size_t begin =
      static_cast<size_t>(begin_year - first_year_) * kTradingDaysPerYear;
  size_t end =
      static_cast<size_t>(end_year - first_year_ + 1) * kTradingDaysPerYear;
  return std::make_pair(begin, end);
}

std::string TradingCalendar::DayLabel(size_t day) const {
  return StrFormat("%d-%03zu", YearOfDay(day), DayOfYear(day));
}

}  // namespace hypermine::market
