#include "market/series.h"

#include <cmath>

#include "util/string_util.h"

namespace hypermine::market {

StatusOr<std::vector<double>> DeltaSeries(const std::vector<double>& closes) {
  if (closes.size() < 2) {
    return Status::InvalidArgument("DeltaSeries: need at least two closes");
  }
  std::vector<double> deltas;
  deltas.reserve(closes.size() - 1);
  for (size_t i = 0; i + 1 < closes.size(); ++i) {
    if (closes[i] <= 0.0) {
      return Status::InvalidArgument(
          StrFormat("DeltaSeries: non-positive close at day %zu", i));
    }
    deltas.push_back((closes[i + 1] - closes[i]) / closes[i]);
  }
  return deltas;
}

StatusOr<std::vector<double>> DeltaSeriesWindow(
    const std::vector<double>& closes, size_t begin, size_t end) {
  if (begin >= end || end >= closes.size()) {
    return Status::OutOfRange("DeltaSeriesWindow: bad [begin, end)");
  }
  std::vector<double> deltas;
  deltas.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    if (closes[i] <= 0.0) {
      return Status::InvalidArgument(
          StrFormat("DeltaSeriesWindow: non-positive close at day %zu", i));
    }
    deltas.push_back((closes[i + 1] - closes[i]) / closes[i]);
  }
  return deltas;
}

std::vector<double> Normalized(const std::vector<double>& v) {
  double norm_sq = 0.0;
  for (double x : v) norm_sq += x * x;
  if (norm_sq <= 0.0) return v;
  double inv = 1.0 / std::sqrt(norm_sq);
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] * inv;
  return out;
}

}  // namespace hypermine::market
