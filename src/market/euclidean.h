#ifndef HYPERMINE_MARKET_EUCLIDEAN_H_
#define HYPERMINE_MARKET_EUCLIDEAN_H_

#include <vector>

#include "util/status.h"

namespace hypermine::market {

/// Euclidean distance between the L2-normalized delta series of two
/// financial time-series (Section 5.3.1):
///   ED(A,B) = || normalized(Δ(A)) - normalized(Δ(B)) ||.
/// The deltas must have equal non-zero lengths. ED lies in [0, 2].
StatusOr<double> EuclideanDistance(const std::vector<double>& delta_a,
                                   const std::vector<double>& delta_b);

/// Euclidean similarity ES(A,B) = 1 - ED(A,B)/2, a value in [0, 1] where
/// higher means more similar (Section 5.3.1).
StatusOr<double> EuclideanSimilarity(const std::vector<double>& delta_a,
                                     const std::vector<double>& delta_b);

}  // namespace hypermine::market

#endif  // HYPERMINE_MARKET_EUCLIDEAN_H_
