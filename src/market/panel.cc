#include "market/panel.h"

#include <map>

#include "util/csv.h"
#include "util/string_util.h"

namespace hypermine::market {

Status SavePanelCsv(const MarketPanel& panel, const std::string& path) {
  CsvDocument doc;
  doc.header.push_back("day");
  for (const Ticker& t : panel.tickers) doc.header.push_back(t.symbol);

  // Metadata row: sector code + sub-sector index, e.g. "sector:E:32".
  std::vector<std::string> meta_row;
  meta_row.push_back("meta");
  for (const Ticker& t : panel.tickers) {
    meta_row.push_back(StrFormat("sector:%s:%zu", SectorCode(t.sector),
                                 t.subsector));
  }
  doc.rows.push_back(std::move(meta_row));

  for (size_t d = 0; d < panel.num_days(); ++d) {
    std::vector<std::string> row;
    row.reserve(panel.tickers.size() + 1);
    row.push_back(panel.calendar.DayLabel(d));
    for (const PriceSeries& s : panel.series) {
      row.push_back(FormatDouble(s.closes[d], 6));
    }
    doc.rows.push_back(std::move(row));
  }
  return WriteCsvFile(path, doc);
}

StatusOr<MarketPanel> LoadPanelCsv(const std::string& path, int first_year) {
  HM_ASSIGN_OR_RETURN(CsvDocument doc, ReadCsvFile(path, /*has_header=*/true));
  if (doc.header.size() < 2) {
    return Status::InvalidArgument("panel CSV: need day column + >=1 symbol");
  }
  if (doc.rows.empty() || doc.rows[0].empty() || doc.rows[0][0] != "meta") {
    return Status::InvalidArgument("panel CSV: missing meta row");
  }
  const size_t num_series = doc.header.size() - 1;
  const size_t num_days = doc.rows.size() - 1;
  if (num_days == 0 || num_days % kTradingDaysPerYear != 0) {
    return Status::InvalidArgument(
        "panel CSV: day count is not a whole number of trading years");
  }

  std::map<std::string, Ticker> paper_by_symbol;
  for (const Ticker& t : PaperTickers()) paper_by_symbol[t.symbol] = t;

  MarketPanel panel;
  panel.calendar =
      TradingCalendar(first_year, num_days / kTradingDaysPerYear);
  panel.tickers.reserve(num_series);
  panel.series.resize(num_series);

  const auto& taxonomy = SubSectorTaxonomy();
  for (size_t i = 0; i < num_series; ++i) {
    const std::string& symbol = doc.header[i + 1];
    const std::string& meta = doc.rows[0][i + 1];
    std::vector<std::string> parts = Split(meta, ':');
    if (parts.size() != 3 || parts[0] != "sector") {
      return Status::InvalidArgument("panel CSV: bad meta cell: " + meta);
    }
    HM_ASSIGN_OR_RETURN(Sector sector, SectorFromCode(parts[1]));
    int64_t subsector = 0;
    if (!ParseInt64(parts[2], &subsector) || subsector < 0 ||
        static_cast<size_t>(subsector) >= taxonomy.size()) {
      return Status::InvalidArgument("panel CSV: bad sub-sector: " + meta);
    }
    Ticker ticker;
    auto it = paper_by_symbol.find(symbol);
    if (it != paper_by_symbol.end()) {
      ticker = it->second;
    } else {
      ticker.symbol = symbol;
      ticker.sector = sector;
      ticker.subsector = static_cast<size_t>(subsector);
      ticker.role = taxonomy[ticker.subsector].role;
      ticker.from_paper = false;
    }
    panel.tickers.push_back(ticker);
    panel.series[i].symbol = symbol;
    panel.series[i].closes.resize(num_days);
  }

  for (size_t d = 0; d < num_days; ++d) {
    const auto& row = doc.rows[d + 1];
    for (size_t i = 0; i < num_series; ++i) {
      double close = 0.0;
      if (!ParseDouble(row[i + 1], &close)) {
        return Status::InvalidArgument(
            StrFormat("panel CSV: bad close at day %zu series %zu", d, i));
      }
      panel.series[i].closes[d] = close;
    }
  }
  return panel;
}

}  // namespace hypermine::market
